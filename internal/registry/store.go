package registry

// The pluggable durability boundary of the store. The registry keeps
// its working state in memory regardless of backend — shard arenas,
// token interner, indexes, lease tables — and the backend decides what
// survives a process death:
//
//   - memory (Options.Backend == nil): nothing is persisted; a restart
//     comes back empty and relies on providers re-announcing. This is
//     the classic SLP/Jini soft-state answer and the right choice for
//     simulations, tests, and short-lived LAN registries.
//   - WAL (Options.Backend = the *WAL from Recover): every mutation is
//     appended to a crash-safe write-ahead log with periodic compacted
//     snapshots (wal.go), so a restart replays back to exactly the
//     durably-acknowledged state instead of waiting out a
//     re-announcement storm.
//
// The split mirrors how other registry-shaped systems put a memory and
// a persistent implementation behind one small interface: the store
// only ever talks to the boundary below, never to files.

import (
	"errors"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// ErrDurability wraps a failed backend durability barrier: the mutation
// was applied in memory but its log record may not have reached the
// disk, so the caller must treat the operation as failed (a provider
// retries its publish; the sticky backend error keeps failing until the
// operator intervenes).
var ErrDurability = errors.New("registry: durable backend failed")

// Backend records the store's result-affecting mutations durably. A nil
// backend is the memory store: mutations are applied and forgotten.
//
// The contract has two halves so group commit works:
//
//   - The Append* methods are called while the store still holds the
//     lock that ordered the mutation (the advert's shard lock, or subMu
//     for standing queries). They must assign and return a log sequence
//     number without blocking on I/O — a buffered write at most — so
//     the in-memory apply order and the log order can never diverge
//     for the same key.
//   - Sync blocks until the record with the given LSN is durable. The
//     store calls it after releasing its locks and before returning to
//     the caller, so a successful Publish/Renew/Remove/Subscribe is a
//     durable one. Concurrent Sync callers may be satisfied by one
//     shared flush (group commit). A Sync error means durability is
//     gone, not that the in-memory apply was undone; callers must
//     surface it as a failed operation.
//
// Lease expiry sweeps and subscription pruning are logged too
// (AppendExpire, AppendPruneSubs): purge timing decides whether a
// later re-publish is a fresh insert or a stale-version reject, and
// whether a late renewal resurrects an advert, so replay has to
// reproduce it rather than re-derive it from a different clock.
type Backend interface {
	// AppendPublish logs a stored (or updated) advertisement with the
	// lease actually granted and the wall-clock instant it was granted
	// at; replay re-grants the same absolute deadline.
	AppendPublish(adv wire.Advertisement, granted time.Duration, now time.Time) uint64
	// AppendRenew logs a successful lease renewal at now.
	AppendRenew(id uuid.UUID, now time.Time) uint64
	// AppendRemove logs an explicit withdrawal (including the
	// service-key supersede removal a publish performs).
	AppendRemove(id uuid.UUID) uint64
	// AppendSubscribe logs a standing query registration or renewal.
	AppendSubscribe(id uuid.UUID, kind describe.Kind, payload []byte, notifyAddr string, expires time.Time) uint64
	// AppendUnsubscribe logs a standing-query withdrawal.
	AppendUnsubscribe(id uuid.UUID) uint64
	// AppendExpire logs that a lease sweep purged at least one advert
	// whose deadline was at or before through.
	AppendExpire(through time.Time) uint64
	// AppendPruneSubs logs that a subscription sweep at now removed at
	// least one lapsed standing query.
	AppendPruneSubs(now time.Time) uint64
	// Sync blocks until the record with the given LSN is durable.
	Sync(lsn uint64) error
	// Close flushes and releases the backend. The store must not be
	// mutated afterwards.
	Close() error
}

// sync pushes an assigned LSN through the backend's durability barrier;
// a nil backend (the memory store) is free.
func (s *Store) sync(lsn uint64) error {
	if s.backend == nil || lsn == 0 {
		return nil
	}
	return s.backend.Sync(lsn)
}
