package federation

import "semdisco/internal/obs"

// Runtime observability counters for the federation protocol loops.
// They mirror the per-registry Stats struct into the process-wide obs
// registry (so live registryd exposes them over -stats-addr and
// simdisco can diff them per phase) and add the beacon/summary/read-
// pool activity Stats never carried. Documented in OBSERVABILITY.md.
var (
	fQueriesReceived = obs.NewCounter("federation.queries.received", "count",
		"queries arriving at a registry (client or forwarded)")
	fQueriesDuplicate = obs.NewCounter("federation.queries.duplicate", "count",
		"queries suppressed by query-ID loop avoidance")
	fQueriesForwarded = obs.NewCounter("federation.queries.forwarded", "count",
		"query copies forwarded to peer registries")
	fForwardsPruned = obs.NewCounter("federation.forwards.pruned", "count",
		"peer forwards skipped because the peer summary cannot match")
	fQueriesAnswered = obs.NewCounter("federation.queries.answered", "count",
		"aggregated responses sent toward the query origin")
	fResultsReturned = obs.NewCounter("federation.results.returned", "count",
		"advertisements carried in responses toward the origin")
	fAdvertsPushed = obs.NewCounter("federation.adverts.pushed", "count",
		"advertisement replicas pushed to peers (push cooperation)")
	fPeersExpired = obs.NewCounter("federation.peers.expired", "count",
		"peers dropped after the ping timeout")
	fBeaconsSent = obs.NewCounter("federation.beacons.sent", "count",
		"LAN presence beacons multicast")
	fSummariesSent = obs.NewCounter("federation.summaries.sent", "count",
		"summary gossip messages sent to peers")
	fDeltaSent = obs.NewCounter("federation.delta.sent", "count",
		"incremental summary deltas sent to peers")
	fDeltaFullSent = obs.NewCounter("federation.delta.full", "count",
		"full summary resyncs sent (first contact, periodic refresh, or requested)")
	fDeltaSkipped = obs.NewCounter("federation.delta.skipped", "count",
		"summary ticks where a fully-acked peer was sent nothing")
	fDeltaApplied = obs.NewCounter("federation.delta.applied", "count",
		"summary deltas and resyncs applied to a peer's summary")
	fDeltaStale = obs.NewCounter("federation.delta.stale", "count",
		"deltas rejected because their base version did not match")
	fDeltaResyncs = obs.NewCounter("federation.delta.resyncs", "count",
		"acks received requesting a full resync")
	fReadPoolAsync = obs.NewCounter("federation.readpool.async", "count",
		"local evaluations dispatched to the read worker pool")
	fReadPoolInline = obs.NewCounter("federation.readpool.inline", "count",
		"local evaluations run on the node goroutine (no pool or pool full)")
	fRCacheHits = obs.NewCounter("federation.rcache.hits", "count",
		"queries whose remote pools were served from the gateway result cache (no fan-out)")
	fRCacheMisses = obs.NewCounter("federation.rcache.misses", "count",
		"gateway result cache lookups with no usable entry")
	fRCacheExpired = obs.NewCounter("federation.rcache.expired", "count",
		"gateway result cache entries dropped past their lease-bounded TTL")
	fRCacheSize = obs.NewGauge("federation.rcache.size", "count",
		"resident gateway result cache entries")

	// Domain directory (registry-of-registries) activity: the gossiped
	// hierarchy of directory.go.
	fDirEntries = obs.NewGauge("federation.directory.entries", "count",
		"resident live domain directory entries")
	fDirTombstones = obs.NewGauge("federation.directory.tombstones", "count",
		"resident tombstoned (departed-domain) directory entries")
	fDirMergeApplied = obs.NewCounter("federation.directory.merges.applied", "count",
		"directory entries accepted by the origin-stamped merge")
	fDirMergeStale = obs.NewCounter("federation.directory.merges.stale", "count",
		"directory entries rejected as stale or duplicate by the merge")
	fDirDeltaSent = obs.NewCounter("federation.directory.delta.sent", "count",
		"incremental directory deltas sent to peers")
	fDirDeltaFull = obs.NewCounter("federation.directory.delta.full", "count",
		"full directory snapshots sent (first contact, periodic refresh, or requested)")
	fDirDeltaSkipped = obs.NewCounter("federation.directory.delta.skipped", "count",
		"directory ticks where a fully-acked peer was sent nothing")
	fDirDeltaStale = obs.NewCounter("federation.directory.delta.stale", "count",
		"directory deltas rejected because their base stream version did not match")
	fDirResyncs = obs.NewCounter("federation.directory.resyncs", "count",
		"directory acks received requesting a full snapshot")
	fDirLookupHit = obs.NewCounter("federation.directory.lookups.hit", "count",
		"domain-scoped queries resolved to a gateway through the directory")
	fDirLookupMiss = obs.NewCounter("federation.directory.lookups.miss", "count",
		"domain-scoped queries whose domain the directory did not know")
	fDirRootFallback = obs.NewCounter("federation.directory.root.fallback", "count",
		"domain-scoped queries escalated to the root after a directory miss")
	fDirTombExpired = obs.NewCounter("federation.directory.tombstones.expired", "count",
		"tombstoned directory entries aged out after TombstoneTTL")
)
