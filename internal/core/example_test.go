package core_test

import (
	"fmt"
	"time"

	"semdisco/internal/core"
)

// The canonical semdisco flow: a registry, a semantically described
// service, and a client that discovers it by asking for a superclass.
func Example() {
	sys := core.NewSystem(core.Options{Seed: 1})
	sys.StartRegistry("hq", core.RegistryOptions{})
	sys.StartService("hq", core.ServiceOptions{
		Profile: core.ServiceProfile{
			IRI:      "urn:svc:radar-1",
			Name:     "Harbour radar",
			Category: sys.Class("RadarFeed"),
			Endpoint: "udp://10.0.0.1:9000",
		},
	})
	cli := sys.StartClient("hq", core.ClientOptions{})
	sys.Step(2 * time.Second)

	hits, via, _ := cli.Find(core.Query{Category: sys.Class("SensorFeed")})
	fmt.Printf("%d hit via %s: %s at %s\n", len(hits), via, hits[0].Name, hits[0].Endpoint)
	// Output: 1 hit via registry: Harbour radar at udp://10.0.0.1:9000
}

// Standing queries push every future matching service to the client.
func ExampleClient_Watch() {
	sys := core.NewSystem(core.Options{Seed: 2})
	sys.StartRegistry("ops", core.RegistryOptions{})
	cli := sys.StartClient("ops", core.ClientOptions{})
	sys.Step(2 * time.Second)

	cancel, _ := cli.Watch(core.Query{Category: sys.Class("SensorFeed")}, func(h core.Hit) {
		fmt.Println("appeared:", h.Name)
	})
	defer cancel()

	sys.StartService("ops", core.ServiceOptions{
		Profile: core.ServiceProfile{
			IRI: "urn:svc:ir", Name: "IR camera",
			Category: sys.Class("InfraredCameraFeed"), Endpoint: "udp://cam:1",
		},
	})
	sys.Step(2 * time.Second)
	// Output: appeared: IR camera
}

// When every registry is gone, discovery degrades to the decentralized
// LAN fallback instead of failing.
func ExampleClient_Find_fallback() {
	sys := core.NewSystem(core.Options{Seed: 3})
	reg := sys.StartRegistry("hq", core.RegistryOptions{})
	sys.StartService("hq", core.ServiceOptions{
		Profile: core.ServiceProfile{
			IRI: "urn:svc:map", Name: "Map", Category: sys.Class("MapService"), Endpoint: "e",
		},
	})
	cli := sys.StartClient("hq", core.ClientOptions{})
	sys.Step(2 * time.Second)

	reg.Crash()
	sys.Step(time.Second)
	hits, via, _ := cli.Find(core.Query{Category: sys.Class("MapService"), Timeout: 30 * time.Second})
	fmt.Printf("%d hit via %s\n", len(hits), via)
	// Output: 1 hit via fallback
}
