package ontology_test

import (
	"fmt"

	"semdisco/internal/ontology"
)

// Build a taxonomy programmatically and query subsumption — the
// "a Radar is a kind of Sensor" inference at the heart of semantic
// service discovery.
func Example() {
	o := ontology.New("http://example.org/onto#")
	o.AddClass("http://example.org/onto#Sensor")
	o.AddClass("http://example.org/onto#Radar", "http://example.org/onto#Sensor")
	o.Freeze()

	fmt.Println(o.Subsumes("http://example.org/onto#Sensor", "http://example.org/onto#Radar"))
	fmt.Println(o.Subsumes("http://example.org/onto#Radar", "http://example.org/onto#Sensor"))
	// Output:
	// true
	// false
}

// Load the same taxonomy from RDF — the form a registry's artifact
// repository serves to disconnected clients.
func ExampleFromTurtle() {
	o, err := ontology.FromTurtle("http://example.org/onto#", `
		@prefix ex: <http://example.org/onto#> .
		@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
		ex:Radar rdfs:subClassOf ex:Sensor .
		ex:CoastalRadar rdfs:subClassOf ex:Radar .
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(o.Subsumes("http://example.org/onto#Sensor", "http://example.org/onto#CoastalRadar"))
	fmt.Printf("%.2f\n", o.Similarity("http://example.org/onto#Radar", "http://example.org/onto#CoastalRadar"))
	// Output:
	// true
	// 0.80
}
