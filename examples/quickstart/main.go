// Quickstart: the smallest complete use of the semdisco library —
// one registry, one semantically described service, one client that
// finds it by asking for a *superclass* of what was published.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"semdisco/internal/core"
)

func main() {
	// A System hosts registries, services and clients on a
	// deterministic in-memory network with the built-in
	// sensor/service taxonomy.
	sys := core.NewSystem(core.Options{Seed: 1})

	// 1. A registry on the "hq" LAN segment. It beacons for passive
	//    discovery and answers multicast probes.
	sys.StartRegistry("hq", core.RegistryOptions{})

	// 2. A service node publishing a semantic profile: a coastal radar
	//    feed with a QoS attribute and a geographic coverage area. The
	//    node discovers the registry itself and maintains its lease.
	_, err := sys.StartService("hq", core.ServiceOptions{
		Profile: core.ServiceProfile{
			IRI:         "urn:svc:radar-7",
			Name:        "Coastal radar 7",
			Description: "X-band surveillance radar, Oslofjord",
			Category:    sys.Class("CoastalRadarFeed"),
			Outputs:     []core.Class{sys.Class("SurfaceTrack")},
			QoS:         map[string]float64{"accuracy": 0.92},
			Endpoint:    "udp://10.1.2.3:9000",
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A client. Let a couple of (virtual) seconds pass so discovery
	//    and publication complete.
	cli := sys.StartClient("hq", core.ClientOptions{})
	sys.Step(2 * time.Second)

	// 4. Discover by semantics: the client asks for any SensorFeed —
	//    it has never heard of "CoastalRadarFeed" — and the registry's
	//    matchmaker finds the service through subsumption
	//    (CoastalRadarFeed ⊑ RadarFeed ⊑ SensorFeed).
	hits, via, err := cli.Find(core.Query{
		Category:   sys.Class("SensorFeed"),
		MinQoS:     map[string]float64{"accuracy": 0.9},
		MaxResults: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d service(s) via %s:\n", len(hits), via)
	for _, h := range hits {
		fmt.Printf("  %-18s %-22s -> %s\n", h.Name, shortClass(string(h.Category)), h.Endpoint)
	}

	// 5. Invocation would now proceed directly against h.Endpoint; the
	//    discovery architecture's job — establishing contact — is done.
}

func shortClass(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}
