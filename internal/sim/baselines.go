package sim

import (
	"fmt"

	"semdisco/internal/baseline"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/wire"
)

// CentralHandle wraps a deployed UDDI-like central registry.
type CentralHandle struct {
	Central *baseline.CentralRegistry
	Env     *runtime.Env
	Addr    transport.Addr
	w       *World
}

// AddCentral deploys the UDDI-like baseline registry. It answers no
// probes and sends no beacons: clients and services must be seeded with
// its endpoint, modelling UDDI's static configuration.
func (w *World) AddCentral(lan, name string) *CentralHandle {
	addr := transport.Addr(lan + "/" + name)
	var c *baseline.CentralRegistry
	env := w.env(addr, lan, func(e *runtime.Env) transport.Handler {
		return func(from transport.Addr, data []byte) { runtime.Dispatch(c, e, from, data) }
	})
	c = baseline.NewCentral(env, w.models)
	h := &CentralHandle{Central: c, Env: env, Addr: addr, w: w}
	return h
}

// PeerInfo returns the central registry's seeding info.
func (h *CentralHandle) PeerInfo() wire.PeerInfo {
	return wire.PeerInfo{ID: h.Env.ID, Addr: string(h.Addr)}
}

// Crash abruptly fails the central registry.
func (h *CentralHandle) Crash() { h.w.Net.SetUp(h.Addr, false) }

// DHTHandle wraps a deployed DHT baseline node.
type DHTHandle struct {
	Node *baseline.DHTNode
	Env  *runtime.Env
	Addr transport.Addr
	w    *World
}

// AddDHTRing deploys n DHT baseline nodes, one per lan name given, and
// installs the full static ring in each.
func (w *World) AddDHTRing(lans []string) []*DHTHandle {
	var handles []*DHTHandle
	var members []wire.PeerInfo
	for i, lan := range lans {
		addr := transport.Addr(fmt.Sprintf("%s/dht%d", lan, i))
		var d *baseline.DHTNode
		env := w.env(addr, lan, func(e *runtime.Env) transport.Handler {
			return func(from transport.Addr, data []byte) { runtime.Dispatch(d, e, from, data) }
		})
		d = baseline.NewDHT(env, w.models)
		handles = append(handles, &DHTHandle{Node: d, Env: env, Addr: addr, w: w})
		members = append(members, wire.PeerInfo{ID: env.ID, Addr: string(addr)})
	}
	for _, h := range handles {
		h.Node.SetRing(members)
	}
	return handles
}

// PeerInfo returns the DHT node's seeding info.
func (h *DHTHandle) PeerInfo() wire.PeerInfo {
	return wire.PeerInfo{ID: h.Env.ID, Addr: string(h.Addr)}
}
