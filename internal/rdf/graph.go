package rdf

import (
	"fmt"
	"sort"
)

// Graph is an in-memory triple store indexed on all three positions
// (SPO, POS, OSP), so every single- and two-constant lookup pattern is
// answered from an index rather than a scan. Graph is not safe for
// concurrent mutation; the registry wraps shared graphs in its own lock.
type Graph struct {
	spo index
	pos index
	osp index
	n   int
}

// index maps first-key → second-key → set of third keys.
type index map[Term]map[Term]termSet

type termSet map[Term]struct{}

func (ix index) add(a, b, c Term) bool {
	m, ok := ix[a]
	if !ok {
		m = make(map[Term]termSet)
		ix[a] = m
	}
	s, ok := m[b]
	if !ok {
		s = make(termSet)
		m[b] = s
	}
	if _, dup := s[c]; dup {
		return false
	}
	s[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c Term) bool {
	m, ok := ix[a]
	if !ok {
		return false
	}
	s, ok := m[b]
	if !ok {
		return false
	}
	if _, present := s[c]; !present {
		return false
	}
	delete(s, c)
	if len(s) == 0 {
		delete(m, b)
		if len(m) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// NewGraph returns an empty graph ready for use.
func NewGraph() *Graph {
	return &Graph{
		spo: make(index),
		pos: make(index),
		osp: make(index),
	}
}

// Len returns the number of distinct triples in the graph.
func (g *Graph) Len() int { return g.n }

// Add inserts the triple; it reports whether the triple was new.
// Invalid triples (literal subjects, non-IRI predicates) are rejected
// with an error so corrupt data cannot enter the store silently.
func (g *Graph) Add(t Triple) (bool, error) {
	if !t.Valid() {
		return false, fmt.Errorf("rdf: invalid triple %v", t)
	}
	if !g.spo.add(t.S, t.P, t.O) {
		return false, nil
	}
	g.pos.add(t.P, t.O, t.S)
	g.osp.add(t.O, t.S, t.P)
	g.n++
	return true, nil
}

// MustAdd is Add for statically well-formed triples; it panics on error.
func (g *Graph) MustAdd(t Triple) bool {
	added, err := g.Add(t)
	if err != nil {
		panic(err)
	}
	return added
}

// AddAll inserts every triple, returning the count of new ones.
func (g *Graph) AddAll(ts []Triple) (added int, err error) {
	for _, t := range ts {
		ok, err := g.Add(t)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// Remove deletes the triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if !g.spo.remove(t.S, t.P, t.O) {
		return false
	}
	g.pos.remove(t.P, t.O, t.S)
	g.osp.remove(t.O, t.S, t.P)
	g.n--
	return true
}

// Has reports whether the exact triple is present.
func (g *Graph) Has(t Triple) bool {
	m, ok := g.spo[t.S]
	if !ok {
		return false
	}
	s, ok := m[t.P]
	if !ok {
		return false
	}
	_, ok = s[t.O]
	return ok
}

// Wildcard marks an unconstrained position in Match. Any term with this
// exact value matches anything; it cannot collide with real data because
// its Kind is outside the valid range.
var Wildcard = Term{Kind: 0xff}

func isWild(t Term) bool { return t.Kind == 0xff }

// Match returns all triples matching the pattern, where any position may
// be Wildcard. The result ordering is deterministic (sorted by
// N-Triples rendering) so experiments and tests are reproducible.
func (g *Graph) Match(s, p, o Term) []Triple {
	var out []Triple
	g.MatchFunc(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return tripleLess(out[i], out[j]) })
	return out
}

func tripleLess(a, b Triple) bool {
	if c := termCompare(a.S, b.S); c != 0 {
		return c < 0
	}
	if c := termCompare(a.P, b.P); c != 0 {
		return c < 0
	}
	return termCompare(a.O, b.O) < 0
}

func termCompare(a, b Term) int {
	switch {
	case a.Kind != b.Kind:
		return int(a.Kind) - int(b.Kind)
	case a.Value != b.Value:
		if a.Value < b.Value {
			return -1
		}
		return 1
	case a.Datatype != b.Datatype:
		if a.Datatype < b.Datatype {
			return -1
		}
		return 1
	case a.Lang != b.Lang:
		if a.Lang < b.Lang {
			return -1
		}
		return 1
	}
	return 0
}

// MatchFunc streams matching triples to fn in unspecified order; fn
// returns false to stop early. It picks the index that binds the most
// constants.
func (g *Graph) MatchFunc(s, p, o Term, fn func(Triple) bool) {
	sw, pw, ow := isWild(s), isWild(p), isWild(o)
	switch {
	case !sw && !pw && !ow:
		if g.Has(Triple{s, p, o}) {
			fn(Triple{s, p, o})
		}
	case !sw && !pw: // s p ?
		for obj := range g.spo[s][p] {
			if !fn(Triple{s, p, obj}) {
				return
			}
		}
	case !pw && !ow: // ? p o
		for sub := range g.pos[p][o] {
			if !fn(Triple{sub, p, o}) {
				return
			}
		}
	case !sw && !ow: // s ? o
		for pred := range g.osp[o][s] {
			if !fn(Triple{s, pred, o}) {
				return
			}
		}
	case !sw: // s ? ?
		for pred, objs := range g.spo[s] {
			for obj := range objs {
				if !fn(Triple{s, pred, obj}) {
					return
				}
			}
		}
	case !pw: // ? p ?
		for obj, subs := range g.pos[p] {
			for sub := range subs {
				if !fn(Triple{sub, p, obj}) {
					return
				}
			}
		}
	case !ow: // ? ? o
		for sub, preds := range g.osp[o] {
			for pred := range preds {
				if !fn(Triple{sub, pred, o}) {
					return
				}
			}
		}
	default: // ? ? ?
		for sub, pm := range g.spo {
			for pred, objs := range pm {
				for obj := range objs {
					if !fn(Triple{sub, pred, obj}) {
						return
					}
				}
			}
		}
	}
}

// Triples returns every triple, deterministically ordered.
func (g *Graph) Triples() []Triple {
	return g.Match(Wildcard, Wildcard, Wildcard)
}

// Objects returns all objects of (s, p, ?), deterministically ordered.
func (g *Graph) Objects(s, p Term) []Term {
	set := g.spo[s][p]
	out := make([]Term, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sortTerms(out)
	return out
}

// Subjects returns all subjects of (?, p, o), deterministically ordered.
func (g *Graph) Subjects(p, o Term) []Term {
	set := g.pos[p][o]
	out := make([]Term, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortTerms(out)
	return out
}

// FirstObject returns one object of (s, p, ?), ok=false when none exists.
// When several objects exist the smallest (deterministic) one is chosen.
func (g *Graph) FirstObject(s, p Term) (Term, bool) {
	objs := g.Objects(s, p)
	if len(objs) == 0 {
		return Term{}, false
	}
	return objs[0], true
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return termCompare(ts[i], ts[j]) < 0 })
}

// Clone returns a deep, independent copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	g.MatchFunc(Wildcard, Wildcard, Wildcard, func(t Triple) bool {
		out.MustAdd(t)
		return true
	})
	return out
}

// Merge adds every triple of other into g, returning the number added.
func (g *Graph) Merge(other *Graph) int {
	added := 0
	other.MatchFunc(Wildcard, Wildcard, Wildcard, func(t Triple) bool {
		if g.MustAdd(t) {
			added++
		}
		return true
	})
	return added
}
