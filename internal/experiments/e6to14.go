package experiments

import (
	"fmt"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/discovery"
	"semdisco/internal/match"
	"semdisco/internal/metrics"
	"semdisco/internal/node"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/sim"
	"semdisco/internal/wire"
	"semdisco/internal/workload"
)

// E6Bootstrap measures registry bootstrap latency and idle traffic for
// active probing vs. passive beacon listening across beacon intervals,
// plus decentralized-fallback recall when all registries die (§4.5,
// Fig. 3).
func E6Bootstrap(beaconIntervals []time.Duration, seed int64) *metrics.Table {
	t := metrics.NewTable("E6 registry discovery bootstrap (§4.5, Fig. 3)",
		"mode", "beacon", "timeToRegistry", "maintKB/min")
	for _, mode := range []string{"active-probe", "passive-beacon"} {
		for _, bi := range beaconIntervals {
			w := sim.NewWorld(sim.Config{Seed: seed})
			cfg := fastRegistry()
			cfg.BeaconInterval = bi
			w.AddRegistry("lan0", "r0", cfg)
			w.Run(50 * time.Millisecond) // registry up before the client
			cliCfg := fastClient()
			if mode == "passive-beacon" {
				// Disable probing: discovery only via beacons.
				cliCfg.Bootstrap = discovery.Config{Passive: true, RegistryTTL: 10 * bi}
			} else {
				cliCfg.Bootstrap = discovery.Config{ProbeInterval: 500 * time.Millisecond, RegistryTTL: 10 * bi}
			}
			cli := w.AddClient("lan0", "c0", cliCfg)
			start := w.Net.Now()
			var found time.Duration = -1
			for step := 0; step < 600; step++ {
				w.Run(50 * time.Millisecond)
				if _, ok := cli.Cli.Bootstrapper().Current(); ok {
					found = w.Net.Now().Sub(start)
					break
				}
			}
			w.Net.ResetStats()
			w.Run(time.Minute)
			maint := w.Net.Stats().ByCategory[wire.CatMaintenance].Bytes
			t.AddRow(mode, bi.String(), fmtDur(found), metrics.KB(maint))
		}
	}
	t.AddNote("passive mode must wait for a beacon; active probing is beacon-independent")
	return t
}

// E6Fallback measures LAN discovery when every registry is dead — the
// Fig. 3 (right) decentralized fallback.
func E6Fallback(services int, seed int64) *metrics.Table {
	t := metrics.NewTable("E6b decentralized fallback after registry death (Fig. 3)",
		"phase", "via", "servicesFound")
	w := sim.NewWorld(sim.Config{Seed: seed})
	reg := w.AddRegistry("lan0", "r0", fastRegistry())
	for i := 0; i < services; i++ {
		w.AddService("lan0", fmt.Sprintf("s%d", i), fastService(time.Minute),
			w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i%4)))
	}
	cli := w.AddClient("lan0", "c0", fastClient())
	w.Run(5 * time.Second)
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 10*time.Second)
	t.AddRow("registry alive", out.Via.String(), distinctServices(w, out.Adverts))
	reg.Crash()
	w.Run(time.Second)
	out = cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 30*time.Second)
	t.AddRow("registry dead", out.Via.String(), distinctServices(w, out.Adverts))
	return t
}

// E7Forwarding compares query forwarding strategies on a WAN registry
// network: recall vs. query messages, and loop suppression (§4.9).
func E7Forwarding(registries int, seed int64) *metrics.Table {
	t := metrics.NewTable("E7 forwarding strategies (§4.9)",
		"strategy", "param", "recall", "queryMsgs", "dupSuppressed")
	type variant struct {
		name  string
		param string
		spec  func(s *node.QuerySpec)
	}
	variants := []variant{
		{"flood", "ttl=2", func(s *node.QuerySpec) { s.TTL = 2 }},
		{"flood", "ttl=4", func(s *node.QuerySpec) { s.TTL = 4 }},
		{"flood", "ttl=8", func(s *node.QuerySpec) { s.TTL = 8 }},
		{"expanding-ring", "max=8", func(s *node.QuerySpec) { s.TTL = 8; s.Strategy = wire.StrategyExpandingRing }},
		{"random-walk", "k=1 ttl=8", func(s *node.QuerySpec) { s.TTL = 8; s.Strategy = wire.StrategyRandomWalk; s.Walkers = 1 }},
		{"random-walk", "k=4 ttl=8", func(s *node.QuerySpec) { s.TTL = 8; s.Strategy = wire.StrategyRandomWalk; s.Walkers = 4 }},
	}
	const trials = 8
	for _, v := range variants {
		found, msgs, dups := 0, uint64(0), uint64(0)
		for trial := 0; trial < trials; trial++ {
			w := sim.NewWorld(sim.Config{Seed: seed + int64(trial)})
			var regs []*sim.RegistryHandle
			for i := 0; i < registries; i++ {
				cfg := fastRegistry()
				cfg.Seeds = chainSeeds(regs, 2)
				cfg.Seed = seed + int64(trial*100+i)
				regs = append(regs, w.AddRegistry(fmt.Sprintf("lan%d", i), fmt.Sprintf("r%d", i), cfg))
			}
			// One service on the farthest LAN from the client.
			w.AddService(fmt.Sprintf("lan%d", registries-1), "s0",
				fastService(time.Minute),
				w.SemanticProfile("urn:svc:target", sim.C("RadarFeed")))
			cli := w.AddClient("lan0", "c0", fastClient())
			w.Run(8 * time.Second) // peer signaling densifies the graph
			w.Net.ResetStats()
			spec := w.SemanticSpec(sim.C("SensorFeed"), 0)
			v.spec(&spec)
			out := cli.Query(spec, time.Minute)
			if out.Completed && len(out.Adverts) > 0 {
				found++
			}
			msgs += w.Net.Stats().ByCategory[wire.CatQuerying].Messages
			for _, r := range regs {
				dups += r.Reg.Stats().DuplicatesSuppressed
			}
		}
		t.AddRow(v.name, v.param, float64(found)/trials, msgs/trials, dups/trials)
	}
	t.AddNote("%d registries chained (each seeded with 2 predecessors), service at the far end", registries)
	return t
}

// E9Coherence verifies the multi-registry network "appears externally
// as one centralized registry" (§4): one connection point reaches
// services on every LAN.
func E9Coherence(lans, perLAN int, seed int64) *metrics.Table {
	t := metrics.NewTable("E9 LAN+WAN coherence (Figs. 2+4)",
		"ttl", "servicesFound", "of")
	w := sim.NewWorld(sim.Config{Seed: seed})
	var regs []*sim.RegistryHandle
	for l := 0; l < lans; l++ {
		cfg := fastRegistry()
		cfg.Seeds = chainSeeds(regs, 1) // chain: worst-case diameter
		regs = append(regs, w.AddRegistry(fmt.Sprintf("lan%d", l), fmt.Sprintf("r%d", l), cfg))
	}
	total := lans * perLAN
	for l := 0; l < lans; l++ {
		for i := 0; i < perLAN; i++ {
			w.AddService(fmt.Sprintf("lan%d", l), fmt.Sprintf("s%d-%d", l, i),
				fastService(time.Minute),
				w.SemanticProfile(fmt.Sprintf("urn:svc:%d-%d", l, i), categoryFor(i)))
		}
	}
	cli := w.AddClient("lan0", "c0", fastClient())
	w.Run(8 * time.Second)
	for _, ttl := range []uint8{0, 1, 2, 4, 8} {
		spec := w.SemanticSpec(sim.C("Service"), ttl)
		spec.MaxResults = 200
		out := cli.Query(spec, time.Minute)
		t.AddRow(fmt.Sprintf("%d", ttl), distinctServices(w, out.Adverts), total)
	}
	t.AddNote("registries chained; TTL ≥ chain length ⇒ complete view through one connection point")
	return t
}

// E10Gateway measures redundant WAN queries with co-located registries,
// with and without gateway coordination (§4.7).
func E10Gateway(localRegistries int, seed int64) *metrics.Table {
	t := metrics.NewTable("E10 LAN gateway coordination (§4.7)",
		"coordination", "wanQueriesReceived", "wanDupSuppressed", "wanQueryKB")
	for _, coord := range []bool{false, true} {
		w := sim.NewWorld(sim.Config{Seed: seed})
		hub := w.AddRegistry("wan", "hub", fastRegistry())
		for i := 0; i < localRegistries; i++ {
			cfg := fastRegistry()
			cfg.GatewayCoordination = coord
			cfg.Seeds = []wire.PeerInfo{hub.PeerInfo()}
			w.AddRegistry("lan0", fmt.Sprintf("r%d", i), cfg)
		}
		// A service on the hub's side so queries have a real target.
		w.AddService("wan", "s0", fastService(time.Minute),
			w.SemanticProfile("urn:svc:remote", sim.C("RadarFeed")))
		cli := w.AddClient("lan0", "c0", fastClient())
		w.Run(8 * time.Second)
		w.Net.ResetStats()
		for q := 0; q < 10; q++ {
			cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 3), 30*time.Second)
		}
		st := hub.Reg.Stats()
		t.AddRow(fmt.Sprintf("%v", coord), st.QueriesReceived, st.DuplicatesSuppressed,
			metrics.KB(w.Net.Stats().ByCategory[wire.CatQuerying].Bytes))
	}
	t.AddNote("%d co-located registries, 10 WAN queries", localRegistries)
	return t
}

// E11Republish measures how long a service stays undiscoverable after
// its registry crashes, until lease-driven failover republishes it
// (§4.1: "the service node must try to find another connection point").
func E11Republish(seed int64) *metrics.Table {
	t := metrics.NewTable("E11 republish-on-registry-failure convergence (§4.1)",
		"ackTimeout", "reconvergence")
	for _, ackTO := range []time.Duration{200 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		w := sim.NewWorld(sim.Config{Seed: seed})
		r1 := w.AddRegistry("lan0", "r1", fastRegistry())
		r2 := w.AddRegistry("lan0", "r2", fastRegistry())
		svcCfg := fastService(4 * time.Second)
		svcCfg.AckTimeout = ackTO
		w.AddService("lan0", "s0", svcCfg, w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
		cli := w.AddClient("lan0", "c0", fastClient())
		w.Run(5 * time.Second)
		holder, survivor := r1, r2
		if r1.Reg.Store().Len() == 0 {
			holder, survivor = r2, r1
		}
		_ = survivor
		holder.Crash()
		crashAt := w.Net.Now()
		recon := time.Duration(-1)
		for step := 0; step < 300; step++ {
			w.Run(200 * time.Millisecond)
			out := cli.Query(w.SemanticSpec(sim.C("RadarFeed"), 0), 5*time.Second)
			if out.Completed && out.Via == node.ViaRegistry && len(out.Adverts) > 0 {
				recon = w.Net.Now().Sub(crashAt)
				break
			}
		}
		t.AddRow(ackTO.String(), fmtDur(recon))
	}
	t.AddNote("time from registry crash until the service is discoverable via the surviving registry")
	return t
}

// E12PushPull compares advertisement cooperation strategies across
// query:publish ratios (§4.9 design choice "push or pull advertisements
// between registries").
func E12PushPull(ratios []int, seed int64) *metrics.Table {
	t := metrics.NewTable("E12 push vs pull vs summary-pruned cooperation (§4.9)",
		"mode", "queries/publish", "totalKB", "recall")
	const lans = 4
	const services = 8
	for _, mode := range []string{"pull-flood", "push-replicate", "pull-summary"} {
		for _, ratio := range ratios {
			bytes, recall := runE12(mode, lans, services, ratio, seed)
			t.AddRow(mode, ratio, metrics.KB(bytes), recall)
		}
	}
	t.AddNote("%d LANs, %d services republished each round; crossover shows pull wins at low query rates, push at high", lans, services)
	return t
}

func runE12(mode string, lans, services, ratio int, seed int64) (uint64, float64) {
	w := sim.NewWorld(sim.Config{Seed: seed})
	var regs []*sim.RegistryHandle
	for l := 0; l < lans; l++ {
		cfg := fastRegistry()
		cfg.Seeds = chainSeeds(regs, 2)
		switch mode {
		case "push-replicate":
			cfg.PushReplication = true
			cfg.PushHops = 2
		case "pull-summary":
			cfg.SummaryPruning = true
			cfg.SummaryInterval = 2 * time.Second
		}
		regs = append(regs, w.AddRegistry(fmt.Sprintf("lan%d", l), fmt.Sprintf("r%d", l), cfg))
	}
	for i := 0; i < services; i++ {
		w.AddService(fmt.Sprintf("lan%d", i%lans), fmt.Sprintf("s%d", i),
			fastService(20*time.Second),
			w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i)))
	}
	cli := w.AddClient("lan0", "c0", fastClient())
	w.Run(8 * time.Second)
	w.Net.ResetStats()
	ttl := uint8(4)
	if mode == "push-replicate" {
		ttl = 0 // replicas answer locally
	}
	// Fixed 25 s measurement window for every mode and ratio: the query
	// count varies, the background publish/renewal load does not.
	const window = 25 * time.Second
	start := w.Net.Now()
	want := 0
	for i := 0; i < services; i++ {
		if i%len(serviceCategories) < 4 { // sensor-feed categories
			want++
		}
	}
	found, total := 0, 0
	for q := 0; q < ratio; q++ {
		spec := w.SemanticSpec(sim.C("SensorFeed"), ttl)
		spec.MaxResults = 50
		out := cli.Query(spec, 30*time.Second)
		total++
		if distinctServices(w, out.Adverts) >= want {
			found++
		}
		slot := start.Add(time.Duration(q+1) * window / time.Duration(ratio))
		if w.Net.Now().Before(slot) {
			w.Run(slot.Sub(w.Net.Now()))
		}
	}
	if end := start.Add(window); w.Net.Now().Before(end) {
		w.Run(end.Sub(w.Net.Now()))
	}
	return w.Net.Stats().BytesSent, float64(found) / float64(total)
}

// E13Artifacts demonstrates the registry-as-repository role (§4.6):
// a client disconnected from the web resolves the shared ontology from
// its registry and can then run semantic matching locally.
func E13Artifacts(seed int64) *metrics.Table {
	t := metrics.NewTable("E13 ontology artifact resolution (§4.6)",
		"scenario", "fetched", "classes", "subsumptionWorks")
	w := sim.NewWorld(sim.Config{Seed: seed})
	w.AddRegistry("lan0", "r0", fastRegistry())
	cli := w.AddClient("lan0", "c0", fastClient())
	w.Run(2 * time.Second)
	var doc []byte
	var ok, done bool
	cli.Cli.FetchArtifact(w.Onto.IRI, 2*time.Second, func(d []byte, o bool) { doc, ok, done = d, o, true })
	w.Run(3 * time.Second)
	if done && ok {
		onto, err := ontology.FromTurtle(w.Onto.IRI, string(doc))
		works := err == nil && onto.Subsumes(sim.C("SensorFeed"), sim.C("RadarFeed"))
		t.AddRow("registry repository", true, onto.NumClasses(), works)
	} else {
		t.AddRow("registry repository", false, 0, false)
	}
	// Control: an unknown IRI cannot be resolved.
	done, ok = false, false
	cli.Cli.FetchArtifact("http://unavailable.example/onto", time.Second, func(d []byte, o bool) { ok, done = o, true })
	w.Run(2 * time.Second)
	t.AddRow("missing artifact", done && ok, 0, false)
	return t
}

// E14MatchCost measures per-query evaluation cost of the three
// description models (§4.2: "it can become more costly to evaluate
// queries, since reasoning about service descriptions may be
// necessary").
func E14MatchCost(population int, seed int64) *metrics.Table {
	t := metrics.NewTable("E14 query evaluation cost (§4.2)",
		"model", "ns/op", "vs-uri")
	onto, levels := workload.GenOntology(workload.OntologySpec{Depth: 4, Branching: 3})
	pop := workload.GenProfiles(workload.PopulationSpec{N: population, Classes: levels[3], Seed: seed})
	matcher := match.New(onto)
	tpl := &profile.Template{Category: levels[1][0]}

	uriModel := describe.URIModel{}
	uriDescs := make([]describe.Description, population)
	kvModel := describe.KVModel{}
	kvDescs := make([]describe.Description, population)
	for i, p := range pop {
		uriDescs[i] = &describe.URIDescription{TypeURI: string(p.Category), ServiceURI: p.ServiceIRI}
		kvDescs[i] = &describe.KVDescription{ServiceURI: p.ServiceIRI, TypeURI: string(p.Category), Name: p.Name}
	}
	uriQ := &describe.URIQuery{TypeURI: string(levels[3][0])}
	kvQ := &describe.KVQuery{TypeURI: string(levels[3][0])}

	bURI := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			uriModel.Evaluate(uriQ, uriDescs[i%population])
		}
	})
	bKV := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kvModel.Evaluate(kvQ, kvDescs[i%population])
		}
	})
	bSem := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matcher.Match(tpl, pop[i%population])
		}
	})
	uriNs := float64(bURI.NsPerOp())
	t.AddRow("uri", bURI.NsPerOp(), metrics.Ratio(float64(bURI.NsPerOp()), uriNs))
	t.AddRow("kv-template", bKV.NsPerOp(), metrics.Ratio(float64(bKV.NsPerOp()), uriNs))
	t.AddRow("semantic", bSem.NsPerOp(), metrics.Ratio(float64(bSem.NsPerOp()), uriNs))
	t.AddNote("in-process evaluation cost per (query, description) pair")
	return t
}
