// Package codec provides the compact binary encoding primitives shared
// by the wire protocol and the service description models: varint
// integers, length-prefixed strings and byte slices, and bounds-checked
// reading that turns truncated or corrupt input into errors instead of
// panics.
//
// The paper stresses that bandwidth matters in dynamic (often wireless)
// environments and that "XML-based semantic service descriptions …
// typically are quite large"; a compact binary encoding is the natural
// stand-in for the binary-XML/compression hook the paper proposes, and
// its exact byte counts feed the bandwidth experiments.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is wrapped by all reader errors caused by short input.
var ErrTruncated = errors.New("codec: truncated input")

// ErrTooLong is wrapped when a declared length exceeds sane limits.
var ErrTooLong = errors.New("codec: declared length too long")

// MaxBytes caps any single length-prefixed field. Semantic profiles are
// a few KB; anything beyond this is corruption or an attack.
const MaxBytes = 1 << 24

// Buffer accumulates an encoded message. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// Bytes returns the encoded bytes (not a copy).
func (w *Buffer) Bytes() []byte { return w.b }

// Reset empties the buffer, keeping its capacity for reuse (pooled
// encoders truncate rather than reallocate between messages).
func (w *Buffer) Reset() { w.b = w.b[:0] }

// Len returns the number of bytes written so far.
func (w *Buffer) Len() int { return len(w.b) }

// Uvarint appends an unsigned varint.
func (w *Buffer) Uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

// Varint appends a signed (zigzag) varint.
func (w *Buffer) Varint(v int64) {
	w.b = binary.AppendVarint(w.b, v)
}

// Byte appends one raw byte.
func (w *Buffer) Byte(v byte) { w.b = append(w.b, v) }

// Bool appends a boolean as one byte.
func (w *Buffer) Bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// Float64 appends an IEEE-754 double, big-endian.
func (w *Buffer) Float64(v float64) {
	w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(v))
}

// String appends a length-prefixed UTF-8 string.
func (w *Buffer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// Bytes16 appends exactly 16 raw bytes (UUIDs).
func (w *Buffer) Bytes16(v [16]byte) { w.b = append(w.b, v[:]...) }

// BytesVar appends a length-prefixed byte slice.
func (w *Buffer) BytesVar(v []byte) {
	w.Uvarint(uint64(len(v)))
	w.b = append(w.b, v...)
}

// StringSlice appends a count-prefixed slice of strings.
func (w *Buffer) StringSlice(ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

// Reader decodes a message produced by Buffer. All methods return an
// error wrapping ErrTruncated or ErrTooLong on malformed input and keep
// the reader positioned at the failure point.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps the byte slice for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset repoints the reader at a new input, keeping the value reusable
// (zero-allocation decode loops embed one Reader and Reset it per
// frame instead of constructing a fresh one on the heap).
func (r *Reader) Reset(b []byte) {
	r.b = b
	r.off = 0
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: uvarint at offset %d", ErrTruncated, r.off)
	}
	r.off += n
	return v, nil
}

// Varint reads a signed varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: varint at offset %d", ErrTruncated, r.off)
	}
	r.off += n
	return v, nil
}

// Byte reads one raw byte.
func (r *Reader) Byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("%w: byte at offset %d", ErrTruncated, r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

// Bool reads a boolean byte; any nonzero value is true.
func (r *Reader) Bool() (bool, error) {
	b, err := r.Byte()
	return b != 0, err
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() (float64, error) {
	if r.Remaining() < 8 {
		return 0, fmt.Errorf("%w: float64 at offset %d", ErrTruncated, r.off)
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	b, err := r.BytesVar()
	return string(b), err
}

// Bytes16 reads exactly 16 raw bytes.
func (r *Reader) Bytes16() ([16]byte, error) {
	var v [16]byte
	if r.Remaining() < 16 {
		return v, fmt.Errorf("%w: 16 bytes at offset %d", ErrTruncated, r.off)
	}
	copy(v[:], r.b[r.off:])
	r.off += 16
	return v, nil
}

// BytesVar reads a length-prefixed byte slice. The returned slice
// aliases the input buffer; callers that retain it must copy.
func (r *Reader) BytesVar() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxBytes {
		return nil, fmt.Errorf("%w: %d bytes at offset %d", ErrTooLong, n, r.off)
	}
	if uint64(r.Remaining()) < n {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, r.off, r.Remaining())
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v, nil
}

// StringSlice reads a count-prefixed string slice.
func (r *Reader) StringSlice() ([]string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxBytes {
		return nil, fmt.Errorf("%w: %d strings", ErrTooLong, n)
	}
	// A string needs at least one length byte, so bound n by Remaining
	// to prevent huge preallocation from corrupt counts.
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: %d strings with %d bytes left", ErrTruncated, n, r.Remaining())
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Expect verifies that the reader is fully consumed; decoding functions
// call it last to reject trailing garbage.
func (r *Reader) Expect(what string) error {
	if r.Remaining() != 0 {
		return fmt.Errorf("codec: %d trailing bytes after %s", r.Remaining(), what)
	}
	return nil
}
