package experiments

import (
	"fmt"
	"time"

	"semdisco/internal/metrics"
	"semdisco/internal/node"
	"semdisco/internal/sim"
	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/wire"
)

// chaosProfile scales the full fault repertoire by one intensity knob
// in [0,1]: bursty Gilbert-Elliott loss, duplication, reordering and
// asymmetric delay spikes all grow together, approximating a link that
// degrades as a whole (congestion, interference, retransmitting MACs).
func chaosProfile(x float64) memnet.FaultProfile {
	return memnet.FaultProfile{
		LossGood:     0.02 * x,
		LossBad:      0.5 * x,
		PGoodBad:     0.05 * x,
		PBadGood:     0.2,
		DupProb:      0.10 * x,
		ReorderProb:  0.10 * x,
		ReorderDelay: 20 * time.Millisecond,
		SpikeProb:    0.05 * x,
		SpikeDelay:   200 * time.Millisecond,
	}
}

// E17Chaos sweeps chaos intensity and reports the discovery
// availability/latency degradation curve — the paper's dynamic-
// environment claim (§4.5) under a deterministic nemesis. Every trial
// runs the same script: a scaled fault profile on all traffic from t=0,
// a WAN partition between the two LANs injected mid-run and healed
// again, and a train of queries before, during and after. Availability
// counts queries that returned at least one advertisement;
// registryShare is the fraction of those answered by a registry rather
// than decentralized fallback — the graceful-degradation signature.
func E17Chaos(intensities []float64, seed int64) *metrics.Table {
	t := metrics.NewTable("E17 chaos sweep (fault intensity vs discovery degradation)",
		"intensity", "availability", "latencyMean", "registryShare", "recallMean")
	const (
		trials   = 5
		services = 6
		queries  = 8
	)
	for _, x := range intensities {
		var (
			asked, answered, viaReg int
			recallSum               float64
			latSum                  time.Duration
		)
		for trial := 0; trial < trials; trial++ {
			w := sim.NewWorld(sim.Config{
				Seed: seed + int64(trial),
				Net:  memnet.Config{Jitter: 2 * time.Millisecond},
			})
			r0 := w.AddRegistry("lan0", "r0", fastRegistry())
			cfg := fastRegistry()
			cfg.Seeds = []wire.PeerInfo{r0.PeerInfo()}
			w.AddRegistry("lan1", "r1", cfg)
			for i := 0; i < services; i++ {
				w.AddService(fmt.Sprintf("lan%d", i%2), fmt.Sprintf("s%d", i),
					fastService(5*time.Second),
					w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i)))
			}
			cli := w.AddClient("lan0", "c0", fastClient())
			w.Run(8 * time.Second) // clean warm-up: discovery + publication
			// Nemesis: degrade all links now, partition the LANs at +6 s,
			// heal at +14 s. Addresses are known only after deployment, so
			// the script installs here rather than via sim.Config.Faults.
			prof := chaosProfile(x)
			w.Net.InstallFaults(memnet.FaultSchedule{
				{At: 0, Scope: memnet.ScopeAll, Profile: &prof},
				{At: 6 * time.Second, Partition: [][]transport.Addr{
					w.Net.NodesOn("lan0"), w.Net.NodesOn("lan1"),
				}},
				{At: 14 * time.Second, Heal: true},
			})
			for q := 0; q < queries; q++ {
				spec := w.SemanticSpec(sim.C("Service"), 3)
				spec.MaxResults = 50
				out := cli.Query(spec, 20*time.Second)
				asked++
				if out.Completed && len(out.Adverts) > 0 {
					answered++
					if out.Via == node.ViaRegistry {
						viaReg++
					}
					recallSum += float64(distinctServices(w, out.Adverts)) / services
					latSum += out.Elapsed
				}
				w.Run(2 * time.Second) // spacing: queries straddle the partition window
			}
		}
		lat := time.Duration(0)
		if answered > 0 {
			lat = latSum / time.Duration(answered)
		}
		regShare := 0.0
		if answered > 0 {
			regShare = float64(viaReg) / float64(answered)
		}
		t.AddRow(fmt.Sprintf("%.2f", x),
			float64(answered)/float64(asked), fmtDur(lat), regShare,
			recallSum/float64(asked))
	}
	t.AddNote("2 LANs, %d services, %d trials × %d queries per intensity; GE burst loss + dup/reorder/spikes on all links, WAN partition injected at +6s and healed at +14s", services, trials, queries)
	return t
}
