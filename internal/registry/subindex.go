package registry

import (
	"sort"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// The inverted notification index. A standing query is compiled once at
// Subscribe into the key domain a publish can probe in O(1):
//
//   - a semantic query whose category is declared in a compiled
//     ontology posts under every concept ID in its subsumption closure
//     (describe.ConceptIndexer → ontology.RelatedIDs), so a declared
//     advert probes exactly one byConcept bucket;
//   - any other prunable query posts under its interned summary tokens
//     (the same soundness invariant the advert token index rests on: a
//     description can match a prunable query only if they share a
//     token, or the description carries no tokens at all);
//   - a non-prunable query (e.g. an attribute-only KV template) is a
//     catch-all and is probed by every publish of its kind.
//
// Each publish then gathers candidates from byConcept[advert concept] ∪
// byTok[advert tokens] ∪ catchAll instead of scanning all standing
// queries; only candidates run the full model.Evaluate. Token-less
// adverts could match anything, so they (and stores built with
// Options.DisableSubIndex — the property-tested baseline) fall back to
// the linear scan, counted by registry.subindex.fallback.scans.
//
// The two posting domains never need cross-probing: a category declared
// in the ontology can never equal an undeclared category string, so a
// concept-posted subscription and a token-posted advert (or vice versa)
// cannot match — still, the concept path probes the token buckets too,
// so correctness never rests on that disjointness argument alone.
//
// Removal is lazy: Unsubscribe tombstones the record (sub.removed) and
// probes skip it; once tombstones outnumber live entries the posting
// lists are rebuilt from scratch. All index state is guarded by the
// store's subMu.
type subIndex struct {
	kinds   map[describe.Kind]*subKind
	entries int // live subscriptions posted
	dead    int // tombstoned records still referenced by posting lists
}

// subKind holds one kind's posting lists.
type subKind struct {
	byTok     map[tok][]*subscription
	byConcept map[int32][]*subscription
	catchAll  []*subscription
}

// newSubIndex returns an empty index ready for the first insert.
func newSubIndex() *subIndex {
	return &subIndex{kinds: make(map[describe.Kind]*subKind)}
}

// compileSub derives the subscription's posting keys from its query
// plan. The caller holds the subMu write lock.
func (s *Store) compileSub(sub *subscription, plan *queryPlan) {
	sub.idxToks, sub.idxConcepts, sub.catchAll = nil, nil, false
	if ci, ok := plan.model.(describe.ConceptIndexer); ok {
		if ids, ok := ci.QueryConceptIDs(plan.query); ok {
			sub.idxConcepts = ids
			return
		}
	}
	if plan.prunable {
		sub.idxToks = s.toks.internAll(plan.tokens)
		return
	}
	sub.catchAll = true
}

// insert posts a compiled subscription.
func (ix *subIndex) insert(sub *subscription) {
	ix.post(sub)
	ix.entries++
	mSubIndexSize.Add(1)
}

// post appends a compiled subscription to the posting lists its keys
// select — concept buckets, token buckets, or the catch-all — creating
// the kind's bucket maps on first use.
func (ix *subIndex) post(sub *subscription) {
	sk := ix.kinds[sub.kind]
	if sk == nil {
		sk = &subKind{}
		ix.kinds[sub.kind] = sk
	}
	switch {
	case sub.idxConcepts != nil:
		if sk.byConcept == nil {
			sk.byConcept = make(map[int32][]*subscription)
		}
		for _, cid := range sub.idxConcepts {
			sk.byConcept[cid] = append(sk.byConcept[cid], sub)
		}
	case sub.idxToks != nil:
		if sk.byTok == nil {
			sk.byTok = make(map[tok][]*subscription)
		}
		for _, t := range sub.idxToks {
			sk.byTok[t] = append(sk.byTok[t], sub)
		}
	default:
		sk.catchAll = append(sk.catchAll, sub)
	}
}

// remove drops a subscription lazily: the caller has tombstoned (or is
// about to tombstone) the record via sub.removed, so posting-list
// probes skip it; the stale list entries are swept by the next rebuild.
func (ix *subIndex) remove(sub *subscription) {
	ix.entries--
	ix.dead++
	mSubIndexSize.Add(-1)
}

// maybeRebuildSubsLocked reposts every live subscription once lazy
// tombstones outnumber live entries, bounding probe overhead at 2x.
// The caller holds the subMu write lock.
func (s *Store) maybeRebuildSubsLocked() {
	ix := s.subidx
	if ix == nil || ix.dead < 64 || ix.dead <= ix.entries {
		return
	}
	ix.kinds = make(map[describe.Kind]*subKind)
	live := 0
	for _, sub := range s.subsArr {
		if sub == nil || sub.removed {
			continue
		}
		ix.post(sub)
		live++
	}
	ix.entries = live
	ix.dead = 0
	mSubIndexRebuilds.Inc()
}

// subCand is the by-value snapshot of one candidate subscription taken
// under subMu.RLock; model.Evaluate runs against these after the lock
// is released, so a slow match never stalls Subscribe, Unsubscribe or
// PruneSubscriptions.
type subCand struct {
	seq    uint64
	id     uuid.UUID
	notify string
	query  describe.Query
}

// notifySubs finds the standing queries a freshly published advert
// matches. Candidates come from the inverted index (or the full scan on
// baseline stores and token-less adverts), are snapshotted under the
// read lock, sorted back into insertion order, and evaluated lock-free.
func (s *Store) notifySubs(model describe.Model, adv wire.Advertisement, desc describe.Description, toks []tok, now time.Time) []Notification {
	var cands []subCand
	s.subMu.RLock()
	if len(s.subs) == 0 {
		s.subMu.RUnlock()
		return nil
	}
	add := func(sub *subscription) {
		if sub == nil || sub.removed || sub.kind != adv.Kind || !sub.alive(now) {
			return
		}
		cands = append(cands, subCand{seq: sub.seq, id: sub.id, notify: sub.notify, query: sub.query})
	}
	scanAll := s.subidx == nil
	var cid int32
	hasCid := false
	if !scanAll {
		if ci, ok := model.(describe.ConceptIndexer); ok {
			cid, hasCid = ci.DescriptionConceptID(desc)
		}
		// A token-less, concept-less advert shares no posting key yet
		// may match any standing query: fall back to the full scan.
		scanAll = !hasCid && len(toks) == 0
	}
	if scanAll {
		mSubFallbackScans.Inc()
		for _, sub := range s.subsArr {
			add(sub)
		}
	} else if sk := s.subidx.kinds[adv.Kind]; sk != nil {
		if hasCid {
			for _, sub := range sk.byConcept[cid] {
				add(sub)
			}
		}
		// A multi-token subscription sits in one bucket per token, so
		// probing several advert tokens can surface it twice; dedup is
		// only needed in that doubly-multi case.
		var seen map[uint64]struct{}
		for _, t := range toks {
			for _, sub := range sk.byTok[t] {
				if len(toks) > 1 && sub != nil && len(sub.idxToks) > 1 {
					if seen == nil {
						seen = make(map[uint64]struct{})
					}
					if _, dup := seen[sub.seq]; dup {
						continue
					}
					seen[sub.seq] = struct{}{}
				}
				add(sub)
			}
		}
		for _, sub := range sk.catchAll {
			add(sub)
		}
	}
	s.subMu.RUnlock()
	if len(cands) == 0 {
		return nil
	}
	// Index probes surface candidates in posting-list order; restore
	// insertion order so notifications are emitted exactly as the
	// baseline scan would emit them.
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	mSubCandidates.Add(uint64(len(cands)))
	var notes []Notification
	for _, c := range cands {
		if ev := model.Evaluate(c.query, desc); ev.Matched {
			notes = append(notes, Notification{SubID: c.id, NotifyAddr: c.notify, Advert: adv})
		}
	}
	mSubMatched.Add(uint64(len(notes)))
	return notes
}
