package federation

import (
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/wire"
)

// deltaCfg turns on fast summary gossip for the delta tests.
func deltaCfg(extra ...func(*Config)) Config {
	cfg := Config{SummaryPruning: true, SummaryInterval: 200 * time.Millisecond}
	for _, f := range extra {
		f(&cfg)
	}
	return cfg
}

// peerView returns what reg currently believes about other's summary.
func peerView(reg *Registry, other *Registry) map[describe.Kind]map[string]bool {
	if p, ok := reg.peers[other.ID()]; ok {
		return p.summary
	}
	return nil
}

// TestDeltaSummaryConverges: adds and removals propagate through
// incremental deltas, and steady state sends no summaries at all.
func TestDeltaSummaryConverges(t *testing.T) {
	h := newHarness(t)
	// A huge SummaryFullEvery keeps the periodic refresh out of the
	// window so every observed send is attributable.
	noFull := func(c *Config) { c.SummaryFullEvery = 1 << 20 }
	r1 := h.addRegistry("lan0", "r1", deltaCfg(noFull))
	r2 := h.addRegistry("lan1", "r2", deltaCfg(noFull, func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)

	tc := h.addClient("lan1", "c")
	adv := h.semAdvert("urn:svc:cam", "Camera", time.Minute)
	h.publish(tc, r2, adv)
	h.net.RunFor(time.Second)

	view := peerView(r1, r2)
	if view == nil || !view[describe.KindSemantic][string(c("Camera"))] {
		t.Fatalf("r1's view of r2 missing Camera token: %v", view)
	}

	// Steady state: no change → fully acked peers get nothing.
	skippedBefore := fDeltaSkipped.Load()
	h.net.RunFor(2 * time.Second)
	if fDeltaSkipped.Load() == skippedBefore {
		t.Fatal("no summary ticks were skipped in steady state")
	}

	// Removal travels as a tombstone delta, not a full resync.
	fullBefore := fDeltaFullSent.Load()
	r2.Store().Remove(adv.ID)
	h.net.RunFor(time.Second)
	view = peerView(r1, r2)
	if view[describe.KindSemantic][string(c("Camera"))] {
		t.Fatalf("Camera token not removed from r1's view: %v", view)
	}
	if got := fDeltaFullSent.Load() - fullBefore; got != 0 {
		t.Fatalf("removal caused %d full resyncs, want incremental delta", got)
	}
}

// TestDeltaSummaryPrunes: the delta-built peer summary drives forward
// pruning exactly like a whole-summary one.
func TestDeltaSummaryPrunes(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg())
	r2 := h.addRegistry("lan1", "r2", deltaCfg(func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)
	tcB := h.addClient("lan1", "c2")
	h.publish(tcB, r2, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second)

	tc := h.addClient("lan0", "c1")
	before := r2.Stats().QueriesReceived
	h.query(tc, r1, "Radar", 2)
	h.net.RunFor(2 * time.Second)
	if got := r2.Stats().QueriesReceived; got != before {
		t.Fatalf("r2 received %d queries despite delta summary proving no match", got-before)
	}
	if r1.Stats().ForwardsPruned == 0 {
		t.Fatal("pruning not accounted")
	}
}

// TestDeltaResyncAfterLoss: when every delta in flight is lost for
// longer than the history covers — simulated by a receiver restart
// (fresh peer state) — the Resync escape hatch recovers via a full
// summary instead of deadlocking on mismatched bases.
func TestDeltaResyncAfterLoss(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg())
	r2 := h.addRegistry("lan1", "r2", deltaCfg(func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)
	tc := h.addClient("lan1", "c")
	h.publish(tc, r2, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second)

	// Simulate r1 losing its applied state (as a restart would): the
	// next delta's base cannot match, forcing a Resync request.
	p := r1.peers[r2.ID()]
	p.summary = nil
	p.gotVersion = 0
	h.publish(tc, r2, h.semAdvert("urn:svc:radar", "Radar", time.Minute))
	h.net.RunFor(3 * time.Second)

	view := peerView(r1, r2)
	if !view[describe.KindSemantic][string(c("Camera"))] || !view[describe.KindSemantic][string(c("Radar"))] {
		t.Fatalf("full resync did not restore r1's view: %v", view)
	}
	if fDeltaResyncs.Load() == 0 {
		t.Fatal("no resync was requested")
	}
}

// TestDeltaAckMonotonic is the out-of-order ack regression test: a
// late-arriving ack for an older version must never regress the
// sender's per-peer acked version (which would re-base future deltas
// on state the peer has already advanced past).
func TestDeltaAckMonotonic(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg())
	r2 := h.addRegistry("lan0", "r2", deltaCfg())
	h.net.RunFor(time.Second)

	p := r1.peers[r2.ID()]
	if p == nil {
		t.Fatal("registries did not peer")
	}
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 7})
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 5}) // late datagram
	if p.ackedVersion != 7 {
		t.Fatalf("ackedVersion = %d after out-of-order ack, want 7", p.ackedVersion)
	}
	// A resync request rides any version without regressing it either.
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 3, Resync: true})
	if p.ackedVersion != 7 || !p.needFull {
		t.Fatalf("ackedVersion = %d needFull = %v, want 7/true", p.ackedVersion, p.needFull)
	}
	// The one sanctioned regression: an ack naming the exact version of
	// the last full resync re-anchors after a sender restart.
	p.lastFullVersion = 2
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 2})
	if p.ackedVersion != 2 {
		t.Fatalf("ackedVersion = %d after full-resync ack, want 2", p.ackedVersion)
	}
	// ...and it is one-shot: once the peer has acked at or past the full,
	// a delayed duplicate of that same ack must not re-anchor backwards
	// (that would trigger a needless delta/stale/resync cycle).
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 4})
	if p.ackedVersion != 4 {
		t.Fatalf("ackedVersion = %d after post-resync ack, want 4", p.ackedVersion)
	}
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 2}) // duplicate of the resync ack
	if p.ackedVersion != 4 {
		t.Fatalf("ackedVersion = %d after duplicate full-resync ack, want 4", p.ackedVersion)
	}
}

// TestDeltaMergeNetsOut: a token added and removed between two acks
// merges away; one surviving the window merges to a single add.
func TestDeltaMergeNetsOut(t *testing.T) {
	var d deltaSummaryState
	snap := func(tokens ...string) []wire.SummaryEntry {
		return []wire.SummaryEntry{{Kind: describe.KindSemantic, Tokens: tokens}}
	}
	d.advance(snap("a"))          // v1: +a
	d.advance(snap("a", "b"))     // v2: +b
	d.advance(snap("a"))          // v3: -b
	d.advance(snap("a", "c"))     // v4: +c
	if d.version != 4 {
		t.Fatalf("version = %d, want 4", d.version)
	}
	merged := d.since(1)
	if len(merged) != 1 {
		t.Fatalf("merged entries = %+v", merged)
	}
	e := merged[0]
	if len(e.Add) != 1 || e.Add[0] != "c" || len(e.Remove) != 1 || e.Remove[0] != "b" {
		t.Fatalf("merged delta = +%v -%v, want +[c] -[b]", e.Add, e.Remove)
	}
	if !d.covers(1) || d.covers(4) || d.covers(9) {
		t.Fatal("history coverage wrong")
	}
}

// TestFullSummariesAblation: the pre-delta behaviour stays available
// and sends whole summaries every tick.
func TestFullSummariesAblation(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg(func(c *Config) { c.FullSummaries = true }))
	r2 := h.addRegistry("lan1", "r2", deltaCfg(func(c *Config) {
		c.FullSummaries = true
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)
	tc := h.addClient("lan1", "c")
	h.publish(tc, r2, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second)
	view := peerView(r1, r2)
	if view == nil || !view[describe.KindSemantic][string(c("Camera"))] {
		t.Fatalf("whole-summary gossip broken: %v", view)
	}
}
