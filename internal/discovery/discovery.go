// Package discovery implements registry discovery and failover for
// client and service nodes (§4.5): active discovery by multicast probe,
// passive discovery by listening to registry beacons, manual seeding
// for WAN registries, and the registry-signaling failover that lets a
// node switch to an alternate registry when its current one disappears
// — "reduce the amount of tedious, manual reconfiguration of registry
// endpoints".
package discovery

import (
	"sort"
	"time"

	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// Config tunes a bootstrapper.
type Config struct {
	// Seeds are statically configured registries (WAN seeding).
	Seeds []wire.PeerInfo
	// SeedAddrs seeds by transport address alone; the registry's
	// identity is learned from its Pong. Used by live UDP deployments.
	SeedAddrs []string
	// ProbeInterval spaces re-probes while no registry is known;
	// default 2 s.
	ProbeInterval time.Duration
	// RegistryTTL ages out registries we have not heard from; default
	// 3× the federation's default beacon interval (15 s).
	RegistryTTL time.Duration
	// Probation spaces liveness re-probes of registries marked dead.
	// A demoted registry is pinged every Probation interval until it
	// answers (a Pong revives it — it is readopted) or it is forgotten;
	// without this, one transient failure would blacklist a registry
	// forever. Default = ProbeInterval.
	Probation time.Duration
	// Passive disables active probing entirely: registries are learned
	// only from beacons, seeds and signaling. Probe-free operation
	// suits radio-silent nodes and the pure decentralized baseline.
	// Probation re-probes are also suppressed.
	Passive bool
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.RegistryTTL == 0 {
		c.RegistryTTL = 15 * time.Second
	}
	if c.Probation == 0 {
		c.Probation = c.ProbeInterval
	}
	return c
}

type known struct {
	info     wire.PeerInfo
	lastSeen time.Time
	// local marks registries heard on the LAN (preferred connection
	// points over remote seeds).
	local bool
	// dead marks registries that failed a request; they are demoted
	// until heard from again.
	dead bool
}

// Bootstrapper tracks known registries for one node and selects the
// current connection point into the registry network.
type Bootstrapper struct {
	env     *runtime.Env
	cfg     Config
	regs    map[wire.NodeID]*known
	stopped bool
	cancels []transport.CancelFunc
	// probation is the pending probation re-probe timer; armed while at
	// least one registry is marked dead, nil otherwise.
	probation transport.CancelFunc
	// onFound, when set, fires once each time the node transitions from
	// "no registry" to "registry available".
	onFound func()
}

// New returns a bootstrapper. Call Start to begin discovery.
func New(env *runtime.Env, cfg Config) *Bootstrapper {
	return &Bootstrapper{
		env:  env,
		cfg:  cfg.withDefaults(),
		regs: make(map[wire.NodeID]*known),
	}
}

// OnRegistryFound registers a callback invoked whenever a registry
// becomes available after a period with none (service nodes republish
// on this signal).
func (b *Bootstrapper) OnRegistryFound(fn func()) { b.onFound = fn }

// Start seeds the table and begins probing.
func (b *Bootstrapper) Start() {
	now := b.env.Clock.Now()
	for _, s := range b.cfg.Seeds {
		if s.ID != b.env.ID {
			b.regs[s.ID] = &known{info: s, lastSeen: now}
		}
	}
	if !b.cfg.Passive {
		b.probe()
	}
	var arm func()
	arm = func() {
		if b.stopped {
			return
		}
		b.expire()
		if _, ok := b.Current(); !ok && !b.cfg.Passive {
			b.probe()
		}
		b.cancels = append(b.cancels, b.env.Clock.After(b.cfg.ProbeInterval, arm))
	}
	b.cancels = append(b.cancels, b.env.Clock.After(b.cfg.ProbeInterval, arm))
}

// Stop cancels the probe and probation timers.
func (b *Bootstrapper) Stop() {
	b.stopped = true
	for _, c := range b.cancels {
		c()
	}
	b.cancels = nil
	if b.probation != nil {
		b.probation()
		b.probation = nil
	}
}

func (b *Bootstrapper) probe() {
	b.env.Multicast(wire.Probe{})
	// Address-only seeds are pinged until they identify themselves.
	for _, addr := range b.cfg.SeedAddrs {
		if addr != string(b.env.Addr()) {
			b.env.Send(transport.Addr(addr), wire.Ping{})
		}
	}
}

func (b *Bootstrapper) expire() {
	cutoff := b.env.Clock.Now().Add(-b.cfg.RegistryTTL)
	for id, k := range b.regs {
		// Only LAN registries age out by beacon silence; seeds stay
		// unless marked dead (no beacons cross the WAN).
		if k.local && k.lastSeen.Before(cutoff) {
			delete(b.regs, id)
		}
	}
}

// Observe feeds a maintenance message into the table. Nodes call it
// from their message handlers for Beacon, ProbeMatch, Pong and Bye
// envelopes; other message types are ignored.
func (b *Bootstrapper) Observe(env *wire.Envelope) {
	hadRegistry := b.hasLive()
	switch body := env.Body.(type) {
	case *wire.Beacon:
		b.learnDirect(env, true)
		b.learn(body.Peers)
	case *wire.ProbeMatch:
		b.learnDirect(env, true)
		b.learn(body.Peers)
	case *wire.Pong:
		b.learnDirect(env, false)
		b.learn(body.Peers)
	case *wire.Bye:
		delete(b.regs, env.From)
	default:
		return
	}
	if !hadRegistry && b.hasLive() && b.onFound != nil {
		b.onFound()
	}
}

func (b *Bootstrapper) learnDirect(env *wire.Envelope, local bool) {
	if env.From == b.env.ID {
		return
	}
	k, ok := b.regs[env.From]
	if !ok {
		k = &known{info: wire.PeerInfo{ID: env.From, Addr: env.FromAddr}}
		b.regs[env.From] = k
	}
	k.info.Addr = env.FromAddr
	k.lastSeen = b.env.Clock.Now()
	if k.dead {
		// Probation ends: the registry answered (probation ping, beacon
		// or pong) and is readopted as a connection point.
		k.dead = false
		dRevived.Inc()
	}
	if local {
		k.local = true
	}
}

// learn adds signaled alternates without marking them live-local.
func (b *Bootstrapper) learn(peers []wire.PeerInfo) {
	now := b.env.Clock.Now()
	for _, p := range peers {
		if p.ID == b.env.ID || p.ID.IsNil() {
			continue
		}
		if _, ok := b.regs[p.ID]; !ok {
			b.regs[p.ID] = &known{info: p, lastSeen: now}
		}
	}
}

// MarkDead demotes a registry after a failed request, triggering
// failover to an alternate and an immediate re-probe. The demotion is
// probation, not a permanent blacklist: the registry is re-pinged every
// Probation interval and readopted as soon as it answers, so a
// transient partition does not force permanent decentralized fallback.
func (b *Bootstrapper) MarkDead(id wire.NodeID) {
	if k, ok := b.regs[id]; ok && !k.dead {
		k.dead = true
		dMarkedDead.Inc()
	}
	if !b.hasLive() && !b.cfg.Passive {
		b.probe()
	}
	b.armProbation()
}

// armProbation schedules the next liveness re-probe of demoted
// registries; it keeps re-arming itself while any remain dead.
func (b *Bootstrapper) armProbation() {
	if b.stopped || b.probation != nil || b.cfg.Passive {
		return
	}
	b.probation = b.env.Clock.After(b.cfg.Probation, func() {
		b.probation = nil
		if b.stopped {
			return
		}
		again := false
		for _, k := range b.regs {
			if k.dead {
				b.env.Send(transport.Addr(k.info.Addr), wire.Ping{})
				dProbationProbes.Inc()
				again = true
			}
		}
		if again {
			b.armProbation()
		}
	})
}

func (b *Bootstrapper) hasLive() bool {
	for _, k := range b.regs {
		if !k.dead {
			return true
		}
	}
	return false
}

// Current returns the preferred registry: a live local one if any
// (lowest ID for determinism), otherwise a live seeded/signaled one.
// ok=false means the node is registry-less and should fall back to
// decentralized discovery (Fig. 3 right).
func (b *Bootstrapper) Current() (wire.PeerInfo, bool) {
	var bestLocal, bestAny *known
	for _, k := range b.regs {
		if k.dead {
			continue
		}
		if bestAny == nil || uuid.Compare(k.info.ID, bestAny.info.ID) < 0 {
			bestAny = k
		}
		if k.local && (bestLocal == nil || uuid.Compare(k.info.ID, bestLocal.info.ID) < 0) {
			bestLocal = k
		}
	}
	if bestLocal != nil {
		return bestLocal.info, true
	}
	if bestAny != nil {
		return bestAny.info, true
	}
	return wire.PeerInfo{}, false
}

// Alternates returns all live registries except the given one, in
// deterministic order — the failover candidates registry signaling
// provided.
func (b *Bootstrapper) Alternates(except wire.NodeID) []wire.PeerInfo {
	var out []wire.PeerInfo
	for _, k := range b.regs {
		if k.dead || k.info.ID == except {
			continue
		}
		out = append(out, k.info)
	}
	sort.Slice(out, func(i, j int) bool { return uuid.Compare(out[i].ID, out[j].ID) < 0 })
	return out
}

// Known returns the full table size (dead or alive), for tests and
// reports.
func (b *Bootstrapper) Known() int { return len(b.regs) }
