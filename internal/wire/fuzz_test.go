package wire

import (
	"reflect"
	"testing"

	"semdisco/internal/describe"
	"semdisco/internal/match"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/uuid"
)

// queryCorpusBodies seeds the fuzzer with the query shapes the sim
// workloads actually send: encoded semantic templates (category +
// outputs + QoS + keywords at varying match floors), UDDI-style KV
// partial templates and exact URI lookups, across the response-control
// and fan-out option space (incl. the NoCache bypass flag).
func queryCorpusBodies(gen *uuid.Generator) []Body {
	const ns = "http://semdisco.example/onto#"
	c := func(name string) ontology.Class { return ontology.Class(ns + name) }
	payloads := [][]byte{
		(&describe.SemanticQuery{Template: &profile.Template{Category: c("Sensor")}}).Encode(),
		(&describe.SemanticQuery{
			Template: &profile.Template{
				Category:        c("RadarFeed"),
				RequiredOutputs: []ontology.Class{c("Track"), c("Position")},
				ProvidedInputs:  []ontology.Class{c("Region")},
				MinQoS:          map[string]float64{"resolutionM": 10, "freshnessS": 2},
				Keywords:        []string{"coastal", "radar"},
			},
			MinDegree: match.Subsumed,
		}).Encode(),
		(&describe.SemanticQuery{
			Template:  &profile.Template{Category: c("InfraredCameraFeed")},
			MinDegree: match.Exact,
		}).Encode(),
		(&describe.KVQuery{NamePrefix: "weather", TypeURI: "urn:svc:weather",
			Attrs: map[string]string{"region": "coastal", "tier": "gold"}}).Encode(),
		(&describe.URIQuery{TypeURI: "urn:svc:map"}).Encode(),
	}
	kinds := []describe.Kind{
		describe.KindSemantic, describe.KindSemantic, describe.KindSemantic,
		describe.KindKV, describe.KindURI,
	}
	var bodies []Body
	for i, p := range payloads {
		bodies = append(bodies,
			Query{
				QueryID: gen.New(), Kind: kinds[i], Payload: p,
				MaxResults: uint16(1 << i), TTL: uint8(i), Strategy: Strategy(i % 2),
				Walkers: uint8(i % 3), ReplyAddr: "lan0/c1", NoCache: i%2 == 1,
			},
			PeerQuery{QueryID: gen.New(), Kind: kinds[i], Payload: p, ReplyAddr: "lan0/r1"},
		)
	}
	bodies = append(bodies, Query{
		QueryID: gen.New(), Kind: describe.KindSemantic, Payload: payloads[1],
		BestOnly: true, TTL: 8, ReplyAddr: "wan/c9", NoCache: true,
	})
	// Domain-pinned queries: same-domain confinement and the cross-domain
	// cascade both start from this wire shape.
	bodies = append(bodies, Query{
		QueryID: gen.New(), Kind: describe.KindSemantic, Payload: payloads[0],
		MaxResults: 4, TTL: 3, ReplyAddr: "lan0/c1", Domain: "edge.west",
	})
	return bodies
}

// FuzzUnmarshal hammers the wire decoder with mutated real messages;
// any panic or accepted-garbage-that-remarshal-differs is a bug.
func FuzzUnmarshal(f *testing.F) {
	gen := uuid.NewGenerator(1)
	for _, body := range append(allBodies(), queryCorpusBodies(gen)...) {
		b, err := Marshal(NewEnvelope(gen.New(), "lan0/n", body, gen))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// envelope (canonical round trip).
		re, err := Marshal(env)
		if err != nil {
			t.Fatalf("decoded envelope does not re-marshal: %v", err)
		}
		env2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshaled bytes do not decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("round trip diverged:\n%#v\n%#v", env, env2)
		}
	})
}
