package obs

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// Handler serves the registry's exposition endpoints:
//
//	GET /stats       aligned plain text (for humans and grep)
//	GET /stats.json  the JSON document ParseJSON/Fetch decode
//
// registryd mounts it on -stats-addr; anything that can speak HTTP can
// scrape it.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, req *http.Request) {
		doc, err := r.Snapshot().MarshalJSONIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc)
	})
	return mux
}

// Fetch retrieves and decodes a /stats.json exposition from a stats
// endpoint ("host:port" or a full URL) — the client side `sdctl stats`
// uses.
func Fetch(endpoint string, timeout time.Duration) (Snapshot, error) {
	url := endpoint
	if len(url) < 7 || (url[:7] != "http://" && (len(url) < 8 || url[:8] != "https://")) {
		url = "http://" + url
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url + "/stats.json")
	if err != nil {
		return Snapshot{}, fmt.Errorf("obs: fetching stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Snapshot{}, fmt.Errorf("obs: stats endpoint returned %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return Snapshot{}, fmt.Errorf("obs: reading stats: %w", err)
	}
	return ParseJSON(body)
}
