package node_test

import (
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/discovery"
	"semdisco/internal/federation"
	"semdisco/internal/node"
	"semdisco/internal/sim"
	"semdisco/internal/wire"
)

func fastClient() node.ClientConfig {
	return node.ClientConfig{
		QueryTimeout:   500 * time.Millisecond,
		FallbackWindow: 300 * time.Millisecond,
		Bootstrap:      discovery.Config{ProbeInterval: 200 * time.Millisecond},
	}
}

func fastService() node.ServiceConfig {
	return node.ServiceConfig{
		Lease:      2 * time.Second,
		AckTimeout: 300 * time.Millisecond,
		Bootstrap:  discovery.Config{ProbeInterval: 200 * time.Millisecond},
	}
}

func TestServicePublishesAfterDiscovery(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	reg := w.AddRegistry("lan0", "r1", federation.Config{})
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(2 * time.Second)
	if reg.Reg.Store().Len() != 1 {
		t.Fatalf("registry holds %d adverts, want 1", reg.Reg.Store().Len())
	}
}

func TestServiceDiscoversRegistryStartedLater(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 2})
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(2 * time.Second) // no registry yet: probes go unanswered
	reg := w.AddRegistry("lan0", "r1", federation.Config{BeaconInterval: 500 * time.Millisecond})
	w.Run(3 * time.Second)
	if reg.Reg.Store().Len() != 1 {
		t.Fatal("service did not publish to a late-arriving registry")
	}
}

func TestClientQueryEndToEnd(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 3})
	w.AddRegistry("lan0", "r1", federation.Config{})
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	// Querying the superclass finds the RadarFeed — the architecture's
	// semantic discovery promise, end to end over the wire.
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 5*time.Second)
	if !out.Completed || out.Via != node.ViaRegistry {
		t.Fatalf("outcome = %+v", out)
	}
	if len(out.Adverts) != 1 {
		t.Fatalf("adverts = %d", len(out.Adverts))
	}
	// The advert's endpoint is usable for direct invocation.
	d, err := w.Models().DecodeDescription(out.Adverts[0].Kind, out.Adverts[0].Payload)
	if err != nil || d.Endpoint() == "" {
		t.Fatalf("endpoint decode = (%v, %v)", d, err)
	}
}

func TestServiceCrashLeasingPurges(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 4})
	reg := w.AddRegistry("lan0", "r1", federation.Config{PurgeInterval: 200 * time.Millisecond})
	svc := w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(2 * time.Second)
	if reg.Reg.Store().Len() != 1 {
		t.Fatal("setup: publish failed")
	}
	svc.Crash()
	// Within ~1 lease (2s) + purge interval the advert must disappear.
	w.Run(4 * time.Second)
	if reg.Reg.Store().Len() != 0 {
		t.Fatal("crashed service's advert not purged — the §4.8 mechanism failed")
	}
}

func TestServiceFailsOverToAlternateRegistry(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 5})
	r1 := w.AddRegistry("lan0", "r1", federation.Config{BeaconInterval: 500 * time.Millisecond})
	r2 := w.AddRegistry("lan0", "r2", federation.Config{BeaconInterval: 500 * time.Millisecond})
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(2 * time.Second)
	holder, other := r1, r2
	if r1.Reg.Store().Len() == 0 {
		holder, other = r2, r1
	}
	if holder.Reg.Store().Len() != 1 {
		t.Fatal("setup: no registry holds the advert")
	}
	holder.Crash()
	// Renewals time out, the service marks the registry dead and
	// republishes to the alternate it learned via beacons.
	w.Run(10 * time.Second)
	if other.Reg.Store().Len() != 1 {
		t.Fatal("service did not republish to the alternate registry")
	}
}

func TestClientFailoverOnRegistryCrash(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 6})
	r1 := w.AddRegistry("lan0", "r1", federation.Config{BeaconInterval: 300 * time.Millisecond})
	r2 := w.AddRegistry("lan0", "r2", federation.Config{BeaconInterval: 300 * time.Millisecond})
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(2 * time.Second)
	// Crash whichever registry the client prefers (lowest ID).
	cur, ok := cli.Cli.Bootstrapper().Current()
	if !ok {
		t.Fatal("client knows no registry")
	}
	crashed := r1
	if r2.Reg.ID() == cur.ID {
		crashed = r2
	}
	crashed.Crash()
	// Give the surviving registry time to hold the advert (the service
	// may itself need to fail over).
	w.Run(10 * time.Second)
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 10*time.Second)
	if !out.Completed || out.Via != node.ViaRegistry || len(out.Adverts) != 1 {
		t.Fatalf("failover query outcome = %+v", out)
	}
	if out.Attempts < 2 {
		t.Fatalf("attempts = %d, expected a failover retry", out.Attempts)
	}
}

func TestDecentralizedFallback(t *testing.T) {
	// No registry at all: the client multicasts a PeerQuery and service
	// nodes answer directly (Fig. 3 right).
	w := sim.NewWorld(sim.Config{Seed: 7})
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.AddService("lan0", "s2", fastService(), w.SemanticProfile("urn:svc:cam", sim.C("CameraFeed")))
	cfg := fastClient()
	cfg.MaxAttempts = 1
	cli := w.AddClient("lan0", "c1", cfg)
	w.Run(time.Second)
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 5*time.Second)
	if !out.Completed || out.Via != node.ViaFallback {
		t.Fatalf("outcome = %+v, want fallback", out)
	}
	if len(out.Adverts) != 2 {
		t.Fatalf("fallback found %d services, want 2", len(out.Adverts))
	}
	// A non-matching fallback query completes with ViaNone.
	out = cli.Query(w.SemanticSpec(sim.C("ChatService"), 0), 5*time.Second)
	if !out.Completed || out.Via != node.ViaNone || len(out.Adverts) != 0 {
		t.Fatalf("no-match outcome = %+v", out)
	}
}

func TestExpandingRing(t *testing.T) {
	// Chain: lan0 — lan1 — lan2; service only on lan2. An expanding
	// ring query from lan0 must widen until it reaches lan2.
	w := sim.NewWorld(sim.Config{Seed: 8})
	r0 := w.AddRegistry("lan0", "r0", federation.Config{})
	r1 := w.AddRegistry("lan1", "r1", federation.Config{Seeds: []wire.PeerInfo{r0.PeerInfo()}})
	w.AddRegistry("lan2", "r2", federation.Config{Seeds: []wire.PeerInfo{r1.PeerInfo()}})
	w.AddService("lan2", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cli := w.AddClient("lan0", "c1", node.ClientConfig{
		QueryTimeout: 2 * time.Second,
		Bootstrap:    discovery.Config{ProbeInterval: 200 * time.Millisecond},
	})
	w.Run(2 * time.Second)
	spec := w.SemanticSpec(sim.C("SensorFeed"), 4)
	spec.Strategy = wire.StrategyExpandingRing
	out := cli.Query(spec, 30*time.Second)
	if !out.Completed || len(out.Adverts) != 1 {
		t.Fatalf("expanding ring outcome = %+v", out)
	}
}

func TestClientArtifactFetch(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 9})
	w.AddRegistry("lan0", "r1", federation.Config{})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	var data []byte
	var ok, done bool
	cli.Cli.FetchArtifact(w.Onto.IRI, time.Second, func(d []byte, o bool) {
		data, ok, done = d, o, true
	})
	w.Run(2 * time.Second)
	if !done || !ok || len(data) == 0 {
		t.Fatalf("artifact fetch = (done=%v ok=%v %d bytes)", done, ok, len(data))
	}
	// Missing artifact: ok=false.
	done, ok = false, true
	cli.Cli.FetchArtifact("urn:missing", time.Second, func(d []byte, o bool) { ok, done = o, true })
	w.Run(2 * time.Second)
	if !done || ok {
		t.Fatalf("missing artifact = (done=%v ok=%v)", done, ok)
	}
}

func TestUpdateDescriptionBumpsVersion(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 10})
	reg := w.AddRegistry("lan0", "r1", federation.Config{})
	desc := w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed"))
	svc := w.AddService("lan0", "s1", fastService(), desc)
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	// Update the description to a different category.
	if !svc.Svc.UpdateDescription(w.SemanticProfile("urn:svc:radar", sim.C("CameraFeed"))) {
		t.Fatal("UpdateDescription did not find the advert")
	}
	w.Run(time.Second)
	if reg.Reg.Store().Len() != 1 {
		t.Fatalf("store has %d adverts after update", reg.Reg.Store().Len())
	}
	out := cli.Query(w.SemanticSpec(sim.C("CameraFeed"), 0), 5*time.Second)
	if len(out.Adverts) != 1 || out.Adverts[0].Version != 2 {
		t.Fatalf("updated advert = %+v", out.Adverts)
	}
	// The old content is gone.
	out = cli.Query(w.SemanticSpec(sim.C("RadarFeed"), 0), 5*time.Second)
	if len(out.Adverts) != 0 {
		t.Fatal("stale pre-update content still discoverable")
	}
	if svc.Svc.UpdateDescription(w.SemanticProfile("urn:other", sim.C("MapService"))) {
		t.Fatal("UpdateDescription matched a foreign service key")
	}
}

func TestGracefulStopDeregisters(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 11})
	reg := w.AddRegistry("lan0", "r1", federation.Config{})
	svc := w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(time.Second)
	if reg.Reg.Store().Len() != 1 {
		t.Fatal("setup failed")
	}
	svc.Svc.Stop()
	w.Run(time.Second)
	if reg.Reg.Store().Len() != 0 {
		t.Fatal("graceful stop did not remove the advert")
	}
}

func TestURIModelOverSameInfrastructure(t *testing.T) {
	// The paper's layered claim: primitive URI-based descriptions use
	// the same registries, leases and queries as semantic ones.
	w := sim.NewWorld(sim.Config{Seed: 12})
	w.AddRegistry("lan0", "r1", federation.Config{})
	uriDesc := &describe.URIDescription{
		TypeURI: "urn:nato:tdl:link16", ServiceURI: "urn:svc:jtids-1",
		Name: "JTIDS terminal", Addr: "udp://10.0.0.7:1000",
	}
	w.AddService("lan0", "s1", fastService(), uriDesc)
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	q := &describe.URIQuery{TypeURI: "urn:nato:tdl:link16"}
	out := cli.Query(node.QuerySpec{Kind: describe.KindURI, Payload: q.Encode()}, 5*time.Second)
	if !out.Completed || len(out.Adverts) != 1 {
		t.Fatalf("URI query over shared infrastructure = %+v", out)
	}
	if out.Adverts[0].Kind != describe.KindURI {
		t.Fatal("wrong payload kind")
	}
}
