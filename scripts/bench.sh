#!/usr/bin/env sh
# Runs a benchmark suite with -benchmem and distils the output into a
# JSON file so the perf trajectory is diffable across PRs. The run's
# runtime metric snapshot (plan-cache hit rates, match-cache hit rates,
# scan counts — see OBSERVABILITY.md) is stored under the "obs" key.
#
# Usage: scripts/bench.sh [registry|match|chaos|qcache] [benchtime]
#   registry (default) -> BENCH_registry.json (registry store/evaluate)
#   match              -> BENCH_match.json (matchmaking + subsumption +
#                         wire encode, incl. compiled-vs-maps baselines)
#   chaos              -> BENCH_chaos.json (fault-sweep availability and
#                         latency degradation; see simdisco -chaos)
#   qcache             -> BENCH_qcache.json (query result cache: cached
#                         vs cache-off throughput, deadline-cache probes,
#                         E18 gateway WAN-reduction sim)
set -eu

cd "$(dirname "$0")/.."

MODE="registry"
case "${1:-}" in
registry | match | chaos | qcache)
    MODE="$1"
    shift
    ;;
esac
BENCHTIME="${1:-1s}"

case "$MODE" in
registry)
    OUT="BENCH_registry.json"
    PATTERN='BenchmarkRegistry'
    ;;
match)
    OUT="BENCH_match.json"
    PATTERN='BenchmarkMatcherMatch|BenchmarkSubsumes|BenchmarkSimilarity|BenchmarkMatcherSemantic|BenchmarkOntologySubsumes|BenchmarkOntologySimilarity|BenchmarkWireMarshalQuery|BenchmarkE5Matchmaking|BenchmarkE14MatchCostSemantic'
    ;;
chaos)
    OUT="BENCH_chaos.json"
    PATTERN='BenchmarkE17Chaos|BenchmarkE16Loss|BenchmarkE3Robustness'
    ;;
qcache)
    OUT="BENCH_qcache.json"
    PATTERN='BenchmarkQCache|BenchmarkRegistryNextExpiry|BenchmarkRegistryExpireIdleTick|BenchmarkE18ResultCache'
    ;;
esac

RAW="$(mktemp)"
OBS="$(mktemp)"
trap 'rm -f "$RAW" "$OBS"' EXIT

SEMDISCO_OBS_OUT="$OBS" \
    go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkRegistryEvaluateBroad-8   3680   382880 ns/op   5531 B/op   10 allocs/op
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i - 1)
        if ($(i) == "B/op") bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_op\": %s", name, ns
    if (bytes != "") printf ", \"bytes_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_op\": %s", allocs
    printf "}"
}
END { printf ",\n  \"obs\": " }
' "$RAW" > "$OUT"

if [ -s "$OBS" ]; then
    # Re-indent the snapshot so it nests under the top-level object.
    sed '2,$s/^/  /' "$OBS" >> "$OUT"
else
    printf 'null' >> "$OUT"
fi
printf '\n}\n' >> "$OUT"

echo "wrote $OUT"
