package semdisco

import (
	"os"
	"testing"

	"semdisco/internal/obs"
)

// TestMain lets a benchmark run export its runtime metric snapshot:
// with SEMDISCO_OBS_OUT set, the process-wide obs registry is written
// there as JSON after all tests and benchmarks finish. scripts/bench.sh
// uses this to record plan-cache hit rates and scan counts alongside
// the ns/op numbers in BENCH_registry.json.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("SEMDISCO_OBS_OUT"); path != "" {
		if data, err := obs.Default.Snapshot().MarshalJSONIndent(); err == nil {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				os.Exit(1)
			}
		}
	}
	os.Exit(code)
}
