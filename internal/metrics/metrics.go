// Package metrics renders experiment results as aligned text tables —
// the rows and series EXPERIMENTS.md records, printed identically by
// the benchmarks and the cmd/simdisco experiment runner.
//
// It is the end-of-run reporting layer, not runtime instrumentation:
// live counters, gauges and latency histograms (what a running
// registryd exposes over -stats-addr) live in internal/obs. A table
// here summarizes an experiment after it finished; an obs metric ticks
// while the process runs.
package metrics

import (
	"fmt"
	"strings"
)

// Table is a titled, column-aligned result table.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
	notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells are formatted with %v, floats with 3
// significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i (for assertions in tests).
func (t *Table) Row(i int) []string { return t.rows[i] }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.notes {
		b.WriteString("  note: " + n + "\n")
	}
	return b.String()
}

// CSV renders the table as RFC 4180 CSV (header row first, notes
// omitted) for plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, r := range t.rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Ratio formats a/b as "x.xx×", guarding division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.2f×", a/b)
}

// KB formats a byte count as kilobytes with one decimal.
func KB(bytes uint64) string {
	return fmt.Sprintf("%.1fkB", float64(bytes)/1024)
}
