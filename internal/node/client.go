package node

import (
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/discovery"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// ClientConfig tunes a client node.
type ClientConfig struct {
	// QueryTimeout bounds one attempt against one registry; default
	// scales with TTL: 300 ms × (TTL+2).
	QueryTimeout time.Duration
	// MaxAttempts bounds registry failovers per query; default 3.
	MaxAttempts int
	// FallbackWindow is how long decentralized fallback collects
	// responses; default 1 s.
	FallbackWindow time.Duration
	// Bootstrap configures registry discovery.
	Bootstrap discovery.Config
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.FallbackWindow == 0 {
		c.FallbackWindow = time.Second
	}
	return c
}

// QuerySpec describes one discovery request.
type QuerySpec struct {
	// Kind and Payload select and parameterize the description model.
	Kind    describe.Kind
	Payload []byte
	// MaxResults / BestOnly delegate response control to the registry.
	MaxResults int
	BestOnly   bool
	// TTL bounds registry-network forwarding (0 = local registry only).
	TTL uint8
	// Strategy selects the forwarding scheme. StrategyExpandingRing is
	// driven by the client: it reissues with growing TTL until results
	// arrive or TTL reaches the configured maximum.
	Strategy wire.Strategy
	// Walkers sets the walker count for random walks; default 2.
	Walkers uint8
}

// Via reports which mechanism produced a query's results.
type Via uint8

// Result provenance values.
const (
	// ViaNone means the query produced nothing by any mechanism.
	ViaNone Via = iota
	// ViaRegistry means a registry answered.
	ViaRegistry
	// ViaFallback means decentralized LAN discovery answered.
	ViaFallback
)

// String names the provenance.
func (v Via) String() string {
	switch v {
	case ViaRegistry:
		return "registry"
	case ViaFallback:
		return "fallback"
	default:
		return "none"
	}
}

// QueryResult is delivered to the query callback.
type QueryResult struct {
	Adverts []wire.Advertisement
	Via     Via
	// Attempts counts registry attempts made (failovers + 1).
	Attempts int
}

type pendingClient struct {
	spec       QuerySpec
	cb         func(QueryResult)
	registry   wire.NodeID
	attempts   int
	ringTTL    uint8
	timer      transport.CancelFunc
	fallback   bool
	collected  []wire.Advertisement
	seenAdvert map[uuid.UUID]bool
}

// Client is a service-consumer node.
type Client struct {
	env     *runtime.Env
	cfg     ClientConfig
	boot    *discovery.Bootstrapper
	pending map[uuid.UUID]*pendingClient
	artPend map[uuid.UUID]*artifactWait
	subs    map[uuid.UUID]*Subscription
	stopped bool
}

// Subscription is a standing query: the callback fires for every
// matching advertisement published at the subscribed registry from now
// on. The client renews the subscription lease automatically and
// re-subscribes after registry failover.
type Subscription struct {
	// ID is the subscription's UUID (the QueryID of its notifications).
	ID uuid.UUID

	c        *Client
	spec     QuerySpec
	lease    time.Duration
	cb       func(wire.Advertisement)
	registry wire.NodeID
	timer    transport.CancelFunc
	missed   int
	canceled bool
}

// Cancel withdraws the subscription.
func (s *Subscription) Cancel() {
	if s.canceled {
		return
	}
	s.canceled = true
	if s.timer != nil {
		s.timer()
	}
	delete(s.c.subs, s.ID)
	if reg, ok := s.c.boot.Current(); ok {
		s.c.env.Send(transport.Addr(reg.Addr), wire.Unsubscribe{SubID: s.ID})
	}
}

type artifactWait struct {
	iri   string
	cb    func([]byte, bool)
	put   bool
	putCB func(bool)
	timer transport.CancelFunc
}

// NewClient creates a client node.
func NewClient(env *runtime.Env, cfg ClientConfig) *Client {
	return &Client{
		env:     env,
		cfg:     cfg.withDefaults(),
		boot:    discovery.New(env, cfg.Bootstrap),
		pending: make(map[uuid.UUID]*pendingClient),
		artPend: make(map[uuid.UUID]*artifactWait),
		subs:    make(map[uuid.UUID]*Subscription),
	}
}

// Subscribe registers a standing query at the current registry; cb
// fires once per matching future advertisement. The lease (default
// 60 s) renews automatically at one-third intervals, and a dead
// registry triggers failover re-subscription. Returns nil when no
// registry is known (subscriptions need one; there is no decentralized
// subscription fallback).
func (c *Client) Subscribe(spec QuerySpec, leaseDur time.Duration, cb func(wire.Advertisement)) *Subscription {
	if _, ok := c.boot.Current(); !ok {
		return nil
	}
	if leaseDur == 0 {
		leaseDur = time.Minute
	}
	s := &Subscription{ID: c.env.NewUUID(), c: c, spec: spec, lease: leaseDur, cb: cb}
	c.subs[s.ID] = s
	c.sendSubscribe(s)
	return s
}

func (c *Client) sendSubscribe(s *Subscription) {
	if c.stopped || s.canceled {
		return
	}
	reg, ok := c.boot.Current()
	if !ok {
		// Registry-less: retry when one appears (piggyback on probing).
		s.timer = c.env.Clock.After(c.cfg.FallbackWindow, func() { c.sendSubscribe(s) })
		return
	}
	s.registry = reg.ID
	c.env.Send(transport.Addr(reg.Addr), wire.Subscribe{
		SubID:       s.ID,
		Kind:        s.spec.Kind,
		Payload:     s.spec.Payload,
		NotifyAddr:  string(c.env.Addr()),
		LeaseMillis: uint64(s.lease / time.Millisecond),
	})
	// Ack timeout: no answer means the registry is gone.
	s.timer = c.env.Clock.After(2*time.Second, func() {
		s.missed++
		c.boot.MarkDead(s.registry)
		c.sendSubscribe(s)
	})
}

func (c *Client) onSubscribeAck(b wire.SubscribeAck) {
	s, ok := c.subs[b.SubID]
	if !ok || s.canceled {
		return
	}
	if s.timer != nil {
		s.timer()
	}
	s.missed = 0
	if !b.OK {
		c.env.Tracef("subscription rejected: %s", b.Error)
		delete(c.subs, b.SubID)
		return
	}
	granted := time.Duration(b.LeaseMillis) * time.Millisecond
	renewIn := granted / 3
	if renewIn <= 0 {
		renewIn = time.Second
	}
	s.timer = c.env.Clock.After(renewIn, func() { c.sendSubscribe(s) })
}

// Bootstrapper exposes the discovery state.
func (c *Client) Bootstrapper() *discovery.Bootstrapper { return c.boot }

// Start begins registry discovery.
func (c *Client) Start() { c.boot.Start() }

// Stop cancels all in-flight operations without invoking callbacks.
func (c *Client) Stop() {
	c.stopped = true
	for _, p := range c.pending {
		if p.timer != nil {
			p.timer()
		}
	}
	for _, a := range c.artPend {
		if a.timer != nil {
			a.timer()
		}
	}
	for _, s := range c.subs {
		if s.timer != nil {
			s.timer()
		}
	}
	c.boot.Stop()
}

// Query submits a discovery request; cb fires exactly once with the
// outcome. The client transparently retries against alternate
// registries and finally falls back to decentralized LAN discovery.
func (c *Client) Query(spec QuerySpec, cb func(QueryResult)) {
	if spec.Walkers == 0 {
		spec.Walkers = 2
	}
	nQueries.Inc()
	p := &pendingClient{spec: spec, cb: cb, seenAdvert: make(map[uuid.UUID]bool)}
	if spec.Strategy == wire.StrategyExpandingRing {
		p.ringTTL = 1
	} else {
		p.ringTTL = spec.TTL
	}
	c.attempt(p)
}

func (c *Client) attemptTimeout(spec QuerySpec, ttl uint8) time.Duration {
	if c.cfg.QueryTimeout > 0 {
		return c.cfg.QueryTimeout
	}
	_ = spec
	return 300 * time.Millisecond * time.Duration(int(ttl)+2)
}

// attempt issues (or re-issues) the query against the current registry.
// Every attempt uses a fresh query ID: registries deduplicate by query
// ID, so retries must not be mistaken for forwarding loops.
func (c *Client) attempt(p *pendingClient) {
	if c.stopped {
		return
	}
	reg, ok := c.boot.Current()
	if !ok || p.attempts >= c.cfg.MaxAttempts {
		c.startFallback(p)
		return
	}
	p.attempts++
	p.registry = reg.ID
	qid := c.env.NewUUID()
	c.pending[qid] = p
	q := wire.Query{
		QueryID:    qid,
		Kind:       p.spec.Kind,
		Payload:    p.spec.Payload,
		MaxResults: uint16(p.spec.MaxResults),
		BestOnly:   p.spec.BestOnly,
		TTL:        p.ringTTL,
		Strategy:   p.spec.Strategy,
		Walkers:    p.spec.Walkers,
		ReplyAddr:  string(c.env.Addr()),
	}
	c.env.Send(transport.Addr(reg.Addr), q)
	p.timer = c.env.Clock.After(c.attemptTimeout(p.spec, p.ringTTL), func() {
		delete(c.pending, qid)
		// No answer: declare the registry dead and fail over (§4.5).
		nQueryFailovers.Inc()
		c.boot.MarkDead(p.registry)
		c.attempt(p)
	})
}

// startFallback switches to decentralized LAN discovery: multicast the
// query, collect direct answers from service nodes for the window.
func (c *Client) startFallback(p *pendingClient) {
	if c.stopped {
		return
	}
	nQueryFallbacks.Inc()
	p.fallback = true
	qid := c.env.NewUUID()
	c.pending[qid] = p
	c.env.Multicast(wire.PeerQuery{
		QueryID:   qid,
		Kind:      p.spec.Kind,
		Payload:   p.spec.Payload,
		ReplyAddr: string(c.env.Addr()),
	})
	p.timer = c.env.Clock.After(c.cfg.FallbackWindow, func() {
		delete(c.pending, qid)
		via := ViaFallback
		if len(p.collected) == 0 {
			via = ViaNone
		}
		adverts := p.collected
		if p.spec.BestOnly && len(adverts) > 1 {
			adverts = adverts[:1]
		} else if p.spec.MaxResults > 0 && len(adverts) > p.spec.MaxResults {
			adverts = adverts[:p.spec.MaxResults]
		}
		p.cb(QueryResult{Adverts: adverts, Via: via, Attempts: p.attempts})
	})
}

// FetchArtifact retrieves an ontology/schema document from the registry
// network's artifact repository (§4.6).
func (c *Client) FetchArtifact(iri string, timeout time.Duration, cb func(data []byte, ok bool)) {
	reg, okReg := c.boot.Current()
	if !okReg {
		cb(nil, false)
		return
	}
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	id := c.env.NewUUID()
	w := &artifactWait{iri: iri, cb: cb}
	c.artPend[id] = w
	c.env.Send(transport.Addr(reg.Addr), wire.ArtifactGet{IRI: iri})
	w.timer = c.env.Clock.After(timeout, func() {
		delete(c.artPend, id)
		cb(nil, false)
	})
}

// PutArtifact uploads a document into the current registry's artifact
// repository; cb reports the outcome.
func (c *Client) PutArtifact(iri string, data []byte, timeout time.Duration, cb func(ok bool)) {
	reg, okReg := c.boot.Current()
	if !okReg {
		cb(false)
		return
	}
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	id := c.env.NewUUID()
	w := &artifactWait{iri: iri, put: true, putCB: cb}
	c.artPend[id] = w
	c.env.Send(transport.Addr(reg.Addr), wire.ArtifactPut{IRI: iri, Data: data})
	w.timer = c.env.Clock.After(timeout, func() {
		delete(c.artPend, id)
		cb(false)
	})
}

// HandleEnvelope implements runtime.Handler.
func (c *Client) HandleEnvelope(env *wire.Envelope, from transport.Addr) {
	if c.stopped {
		return
	}
	c.boot.Observe(env)
	switch b := env.Body.(type) {
	case wire.QueryResult:
		c.onQueryResult(b)
	case wire.ArtifactData:
		c.onArtifactData(b)
	case wire.SubscribeAck:
		c.onSubscribeAck(b)
	case wire.ArtifactPutAck:
		for id, w := range c.artPend {
			if w.put && w.iri == b.IRI {
				if w.timer != nil {
					w.timer()
				}
				delete(c.artPend, id)
				w.putCB(b.OK)
				return
			}
		}
	}
}

func (c *Client) onQueryResult(b wire.QueryResult) {
	// Subscription notifications reuse QueryResult with the SubID as
	// QueryID; they stream indefinitely.
	if s, ok := c.subs[b.QueryID]; ok && !s.canceled {
		for _, a := range b.Adverts {
			s.cb(a)
		}
		return
	}
	p, ok := c.pending[b.QueryID]
	if !ok {
		return
	}
	if p.fallback {
		// Collect from many service nodes until the window closes;
		// deduplicate by advertisement ID.
		for _, a := range b.Adverts {
			if !p.seenAdvert[a.ID] {
				p.seenAdvert[a.ID] = true
				p.collected = append(p.collected, a)
			}
		}
		return
	}
	if !b.Complete {
		p.collected = append(p.collected, b.Adverts...)
		return
	}
	if p.timer != nil {
		p.timer()
	}
	delete(c.pending, b.QueryID)
	adverts := append(p.collected, b.Adverts...)
	// Expanding ring: empty result and room to grow → reissue wider.
	if len(adverts) == 0 && p.spec.Strategy == wire.StrategyExpandingRing && p.ringTTL < p.spec.TTL {
		next := p.ringTTL * 2
		if next > p.spec.TTL {
			next = p.spec.TTL
		}
		p.ringTTL = next
		p.collected = nil
		nQueryReissues.Inc()
		// Ring growth is a widening of the same logical query, not a
		// failover; don't count it against MaxAttempts.
		p.attempts--
		c.attempt(p)
		return
	}
	p.cb(QueryResult{Adverts: adverts, Via: ViaRegistry, Attempts: p.attempts})
}

func (c *Client) onArtifactData(b wire.ArtifactData) {
	for id, w := range c.artPend {
		if !w.put && w.iri == b.IRI {
			if w.timer != nil {
				w.timer()
			}
			delete(c.artPend, id)
			w.cb(b.Data, b.Found)
			return
		}
	}
}
