package ontology

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

const ns = "http://semdisco.example/onto#"

func c(name string) Class { return Class(ns + name) }

// sensorTaxonomy builds the running example from the papers:
// a Radar is a kind of Sensor ("inference mechanisms can be used to find
// matches based on a subtype hierarchy (e.g. a Radar is a kind of
// Sensor)").
func sensorTaxonomy(t testing.TB) *Ontology {
	o := New(ns)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(o.AddClass(c("Device")))
	must(o.AddClass(c("Sensor"), c("Device")))
	must(o.AddClass(c("Radar"), c("Sensor")))
	must(o.AddClass(c("CoastalRadar"), c("Radar")))
	must(o.AddClass(c("Camera"), c("Sensor")))
	must(o.AddClass(c("InfraredCamera"), c("Camera")))
	must(o.AddClass(c("Actuator"), c("Device")))
	must(o.AddProperty(Property(ns+"detects"), c("Sensor"), c("Device"), Property(ns+"observes")))
	must(o.AddProperty(Property(ns+"observes"), "", ""))
	o.Freeze()
	return o
}

func TestSubsumes(t *testing.T) {
	o := sensorTaxonomy(t)
	cases := []struct {
		super, sub string
		want       bool
	}{
		{"Sensor", "Radar", true},
		{"Device", "Radar", true},
		{"Device", "CoastalRadar", true},
		{"Radar", "Radar", true},
		{"Radar", "Sensor", false},
		{"Camera", "Radar", false},
		{"Actuator", "Radar", false},
		{"Sensor", "InfraredCamera", true},
	}
	for _, cs := range cases {
		if got := o.Subsumes(c(cs.super), c(cs.sub)); got != cs.want {
			t.Errorf("Subsumes(%s, %s) = %v, want %v", cs.super, cs.sub, got, cs.want)
		}
	}
	if !o.Subsumes(Thing, c("Radar")) {
		t.Error("Thing must subsume every class")
	}
	if !o.Subsumes(Thing, Class("http://unknown/X")) {
		t.Error("Thing must subsume even unknown classes")
	}
	if o.Subsumes(c("Sensor"), Class("http://unknown/X")) {
		t.Error("a named class must not subsume an unknown class")
	}
}

func TestQueryBeforeFreezePanics(t *testing.T) {
	o := New(ns)
	if err := o.AddClass(c("A")); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Subsumes before Freeze did not panic")
		}
	}()
	o.Subsumes(c("A"), c("A"))
}

func TestMutateAfterFreeze(t *testing.T) {
	o := sensorTaxonomy(t)
	if err := o.AddClass(c("New")); err != ErrFrozen {
		t.Fatalf("AddClass after Freeze = %v, want ErrFrozen", err)
	}
	if err := o.AddProperty(Property(ns+"p"), "", ""); err != ErrFrozen {
		t.Fatalf("AddProperty after Freeze = %v, want ErrFrozen", err)
	}
	if err := o.SetLabel(c("Radar"), "x"); err != ErrFrozen {
		t.Fatalf("SetLabel after Freeze = %v, want ErrFrozen", err)
	}
}

func TestForwardReferences(t *testing.T) {
	o := New(ns)
	// Child declared before parent; parent never declared explicitly.
	if err := o.AddClass(c("Radar"), c("Sensor")); err != nil {
		t.Fatal(err)
	}
	o.Freeze()
	if !o.HasClass(c("Sensor")) {
		t.Fatal("undeclared parent not implicitly created")
	}
	if !o.Subsumes(c("Sensor"), c("Radar")) {
		t.Fatal("forward-referenced subclass axiom lost")
	}
	if !o.Subsumes(Thing, c("Sensor")) {
		t.Fatal("implicit class not rooted at Thing")
	}
}

func TestDepths(t *testing.T) {
	o := sensorTaxonomy(t)
	want := map[string]int{"Device": 1, "Sensor": 2, "Radar": 3, "CoastalRadar": 4}
	for name, d := range want {
		if got := o.Depth(c(name)); got != d {
			t.Errorf("Depth(%s) = %d, want %d", name, got, d)
		}
	}
	if o.Depth(Thing) != 0 {
		t.Errorf("Depth(Thing) = %d, want 0", o.Depth(Thing))
	}
	if o.Depth(Class("http://unknown/X")) != -1 {
		t.Error("unknown class depth must be -1")
	}
}

func TestMultipleInheritanceDepthIsShortestPath(t *testing.T) {
	o := New(ns)
	o.AddClass(c("A"))                 // depth 1
	o.AddClass(c("B"), c("A"))         // depth 2
	o.AddClass(c("C"), c("B"), c("A")) // paths of length 2 and 3 → depth 2
	o.Freeze()
	if got := o.Depth(c("C")); got != 2 {
		t.Fatalf("Depth(C) = %d, want 2 (shortest path)", got)
	}
}

func TestLCS(t *testing.T) {
	o := sensorTaxonomy(t)
	cases := []struct {
		a, b, want string
	}{
		{"Radar", "Camera", "Sensor"},
		{"CoastalRadar", "InfraredCamera", "Sensor"},
		{"Radar", "Actuator", "Device"},
		{"Radar", "Radar", "Radar"},
		{"Radar", "Sensor", "Sensor"},
	}
	for _, cs := range cases {
		if got := o.LCS(c(cs.a), c(cs.b)); got != c(cs.want) {
			t.Errorf("LCS(%s, %s) = %s, want %s", cs.a, cs.b, got, cs.want)
		}
	}
	if got := o.LCS(c("Radar"), Class("http://unknown/X")); got != Thing {
		t.Errorf("LCS with unknown = %s, want Thing", got)
	}
}

func TestSimilarity(t *testing.T) {
	o := sensorTaxonomy(t)
	if s := o.Similarity(c("Radar"), c("Radar")); s != 1 {
		t.Errorf("self similarity = %v, want 1", s)
	}
	// Radar(3) and Camera(3) share Sensor(2): 2·2/(3+3) = 0.666…
	if s := o.Similarity(c("Radar"), c("Camera")); math.Abs(s-2.0/3.0) > 1e-9 {
		t.Errorf("Similarity(Radar, Camera) = %v, want 2/3", s)
	}
	// Sibling at a deeper level is more similar than a cousin.
	deep := o.Similarity(c("CoastalRadar"), c("Radar"))
	shallow := o.Similarity(c("CoastalRadar"), c("Actuator"))
	if deep <= shallow {
		t.Errorf("similarity ordering wrong: parent %v <= distant %v", deep, shallow)
	}
	if s := o.Similarity(c("Radar"), Class("http://unknown/X")); s != 0 {
		t.Errorf("similarity to unknown = %v, want 0", s)
	}
}

func TestSimilarityProperties(t *testing.T) {
	o := sensorTaxonomy(t)
	classes := o.Classes()
	// Symmetry and range [0,1] over all pairs.
	for _, a := range classes {
		for _, b := range classes {
			s1, s2 := o.Similarity(a, b), o.Similarity(b, a)
			if s1 != s2 {
				t.Fatalf("Similarity(%s,%s)=%v asymmetric vs %v", a, b, s1, s2)
			}
			if s1 < 0 || s1 > 1 {
				t.Fatalf("Similarity(%s,%s)=%v out of range", a, b, s1)
			}
		}
	}
}

func TestAncestorsAndDescendants(t *testing.T) {
	o := sensorTaxonomy(t)
	anc := o.Ancestors(c("Radar"))
	wantAnc := map[Class]bool{c("Radar"): true, c("Sensor"): true, c("Device"): true, Thing: true}
	if len(anc) != len(wantAnc) {
		t.Fatalf("Ancestors(Radar) = %v", anc)
	}
	for _, a := range anc {
		if !wantAnc[a] {
			t.Fatalf("unexpected ancestor %s", a)
		}
	}
	desc := o.Descendants(c("Sensor")) // Sensor, Radar, CoastalRadar, Camera, InfraredCamera
	if len(desc) != 5 {
		t.Fatalf("Descendants(Sensor) = %v, want 5 classes", desc)
	}
	if ds := o.Descendants(Class("http://unknown/X")); ds != nil {
		t.Fatalf("Descendants(unknown) = %v, want nil", ds)
	}
}

func TestSubsumptionConsistentWithDescendants(t *testing.T) {
	// Property: b ∈ Descendants(a) ⇔ Subsumes(a, b), for all pairs.
	o := sensorTaxonomy(t)
	for _, a := range o.Classes() {
		inDesc := make(map[Class]bool)
		for _, d := range o.Descendants(a) {
			inDesc[d] = true
		}
		for _, b := range o.Classes() {
			if o.Subsumes(a, b) != inDesc[b] {
				t.Fatalf("Subsumes(%s,%s)=%v but descendants say %v", a, b, o.Subsumes(a, b), inDesc[b])
			}
		}
	}
}

func TestCycleCollapses(t *testing.T) {
	o := New(ns)
	o.AddClass(c("A"), c("B"))
	o.AddClass(c("B"), c("A"))
	o.Freeze() // must terminate
	if !o.Subsumes(c("A"), c("B")) || !o.Subsumes(c("B"), c("A")) {
		t.Fatal("cycle members must subsume each other")
	}
}

func TestSubPropertyOf(t *testing.T) {
	o := sensorTaxonomy(t)
	det, obs := Property(ns+"detects"), Property(ns+"observes")
	if !o.SubPropertyOf(det, obs) {
		t.Fatal("detects ⊑ observes expected")
	}
	if !o.SubPropertyOf(det, det) {
		t.Fatal("SubPropertyOf must be reflexive")
	}
	if o.SubPropertyOf(obs, det) {
		t.Fatal("observes ⊑ detects must be false")
	}
	if o.PropertyDomain(det) != c("Sensor") || o.PropertyRange(det) != c("Device") {
		t.Fatal("domain/range lost")
	}
}

func TestLabels(t *testing.T) {
	o := New(ns)
	o.AddClass(c("Radar"))
	if err := o.SetLabel(c("Radar"), "radar station"); err != nil {
		t.Fatal(err)
	}
	if err := o.SetLabel(c("Nope"), "x"); err == nil {
		t.Fatal("SetLabel on unknown class succeeded")
	}
	o.Freeze()
	if got := o.Label(c("Radar")); got != "radar station" {
		t.Fatalf("Label = %q", got)
	}
	if got := o.Label(c("Camera")); got != "Camera" {
		t.Fatalf("fallback label = %q, want local name", got)
	}
}

func TestDeterministicEnumeration(t *testing.T) {
	o := sensorTaxonomy(t)
	first := fmt.Sprint(o.Classes(), o.Properties(), o.Children(c("Device")))
	for i := 0; i < 5; i++ {
		o2 := sensorTaxonomy(t)
		if got := fmt.Sprint(o2.Classes(), o2.Properties(), o2.Children(c("Device"))); got != first {
			t.Fatal("enumeration order not deterministic across builds")
		}
	}
}

func TestRandomTaxonomyInvariants(t *testing.T) {
	// Property test: random parent assignments always produce an ontology
	// where (1) Thing subsumes everything, (2) Subsumes is reflexive and
	// transitive, (3) depth(child) <= depth(parent)+1.
	f := func(edges []uint8) bool {
		o := New(ns)
		const n = 12
		for i := 0; i < n; i++ {
			o.AddClass(c(fmt.Sprintf("C%d", i)))
		}
		for i, e := range edges {
			child := c(fmt.Sprintf("C%d", i%n))
			parent := c(fmt.Sprintf("C%d", int(e)%n))
			o.AddClass(child, parent)
		}
		o.Freeze()
		for i := 0; i < n; i++ {
			ci := c(fmt.Sprintf("C%d", i))
			if !o.Subsumes(Thing, ci) || !o.Subsumes(ci, ci) {
				return false
			}
			for _, p := range o.Parents(ci) {
				if !o.Subsumes(p, ci) {
					return false
				}
				// Depth is computed on the SCC condensation, so child
				// depth never exceeds any parent's depth by more than 1
				// (cycle members share one depth).
				if o.Depth(ci) > o.Depth(p)+1 {
					return false
				}
			}
			// transitivity via ancestors-of-ancestors
			for _, a := range o.Ancestors(ci) {
				for _, aa := range o.Ancestors(a) {
					if !o.Subsumes(aa, ci) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
