// Package sim assembles complete discovery deployments — registries,
// service nodes, client nodes on LAN segments of a simulated network —
// and drives them deterministically for the experiments. It is the
// "testbed" substitute for the network environments the paper targets
// but never measures.
package sim

import (
	"fmt"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/federation"
	"semdisco/internal/lease"
	"semdisco/internal/node"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/rdf"
	"semdisco/internal/registry"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// Config sets up a world.
type Config struct {
	// Seed drives all world randomness (UUIDs, network jitter/loss).
	Seed int64
	// Net configures the simulated network; Seed is copied into it.
	Net memnet.Config
	// Onto is the shared ontology; nil builds a small default sensor
	// taxonomy.
	Onto *ontology.Ontology
	// Leases is the registry-side lease policy; zero uses defaults with
	// Min=100ms (so experiments can use short leases).
	Leases lease.Policy
	// Faults is an optional chaos script installed at world creation:
	// fault-profile injections, timed partitions and heals, executed at
	// their virtual times (see memnet.FaultSchedule).
	Faults memnet.FaultSchedule
	// Batching wraps every deployed node's transport in a datagram
	// coalescer (transport.Batcher): eligible high-rate messages —
	// renews, acks, gossip, summary deltas — share datagrams instead of
	// paying per-message overhead. Flush timing runs on the simulated
	// clock, so worlds stay deterministic per seed.
	Batching bool
	// Batch tunes coalescing when Batching is set; the zero value gives
	// MTU-bounded batches of up to 32 messages flushed within 2ms.
	Batch transport.BatcherConfig
}

// World is one assembled deployment.
type World struct {
	Net  *memnet.Network
	Onto *ontology.Ontology
	Gen  *uuid.Generator

	models   *describe.Registry
	leases   lease.Policy
	batching bool
	batchCfg transport.BatcherConfig

	Registries []*RegistryHandle
	Services   []*ServiceHandle
	Clients    []*ClientHandle
}

// RegistryHandle wraps one deployed registry.
type RegistryHandle struct {
	Reg  *federation.Registry
	Env  *runtime.Env
	LAN  string
	Addr transport.Addr
	w    *World
}

// ServiceHandle wraps one deployed service node.
type ServiceHandle struct {
	Svc  *node.Service
	Env  *runtime.Env
	LAN  string
	Addr transport.Addr
	// Descs are the descriptions the node hosts.
	Descs []describe.Description
	w     *World
}

// ClientHandle wraps one deployed client node.
type ClientHandle struct {
	Cli  *node.Client
	Env  *runtime.Env
	LAN  string
	Addr transport.Addr
	w    *World
}

// NewWorld builds an empty world.
func NewWorld(cfg Config) *World {
	cfg.Net.Seed = cfg.Seed
	onto := cfg.Onto
	if onto == nil {
		onto = DefaultOntology()
	}
	leases := cfg.Leases
	if leases.Min == 0 {
		leases.Min = 100 * time.Millisecond
	}
	w := &World{
		Net:      memnet.New(cfg.Net),
		Onto:     onto,
		Gen:      uuid.NewGenerator(uint64(cfg.Seed)*2654435761 + 1),
		leases:   leases,
		batching: cfg.Batching,
		batchCfg: cfg.Batch,
	}
	w.models = describe.NewRegistry(
		describe.URIModel{},
		describe.KVModel{},
		describe.NewSemanticModel(onto),
	)
	if len(cfg.Faults) > 0 {
		w.Net.InstallFaults(cfg.Faults)
	}
	return w
}

// Models returns the shared description-model registry.
func (w *World) Models() *describe.Registry { return w.models }

// DefaultNS is the namespace of the default ontology.
const DefaultNS = "http://semdisco.example/onto#"

// C returns a class in the default namespace.
func C(name string) ontology.Class { return ontology.Class(DefaultNS + name) }

// DefaultOntology is a small sensor/service taxonomy modelled on the
// paper's crisis-management and battlefield examples.
func DefaultOntology() *ontology.Ontology {
	o := ontology.New(DefaultNS)
	axioms := [][2]string{
		{"Service", ""},
		{"InformationService", "Service"},
		{"SensorFeed", "InformationService"},
		{"RadarFeed", "SensorFeed"},
		{"CoastalRadarFeed", "RadarFeed"},
		{"CameraFeed", "SensorFeed"},
		{"InfraredCameraFeed", "CameraFeed"},
		{"WeatherService", "InformationService"},
		{"MapService", "InformationService"},
		{"CommunicationService", "Service"},
		{"ChatService", "CommunicationService"},
		{"Track", ""},
		{"AirTrack", "Track"},
		{"SurfaceTrack", "Track"},
		{"Image", ""},
		{"Region", ""},
		{"AreaOfInterest", "Region"},
	}
	for _, a := range axioms {
		if a[1] == "" {
			must(o.AddClass(C(a[0])))
		} else {
			must(o.AddClass(C(a[0]), C(a[1])))
		}
	}
	o.Freeze()
	return o
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func (w *World) env(addr transport.Addr, lan string, dispatch func(*runtime.Env) transport.Handler) *runtime.Env {
	env := &runtime.Env{ID: w.Gen.New(), Clock: w.Net, Gen: w.Gen}
	iface := w.Net.Attach(addr, lan, dispatch(env))
	if w.batching {
		iface = transport.NewBatcher(iface, w.Net, w.batchCfg)
	}
	env.Iface = iface
	return env
}

// AddRegistry deploys and starts a federated registry on the LAN.
func (w *World) AddRegistry(lan, name string, cfg federation.Config) *RegistryHandle {
	addr := transport.Addr(lan + "/" + name)
	store := registry.New(registry.Options{Models: w.models, Leases: w.leases})
	// Pre-load the shared ontology into every registry's artifact
	// repository (§4.6: the registry serves ontologies when offline).
	if w.Onto != nil {
		store.PutArtifact(w.Onto.IRI, ontologyDocument(w.Onto))
	}
	var reg *federation.Registry
	env := w.env(addr, lan, func(e *runtime.Env) transport.Handler {
		return func(from transport.Addr, data []byte) { runtime.Dispatch(reg, e, from, data) }
	})
	if cfg.Seed == 0 {
		cfg.Seed = int64(env.ID[0])<<8 | int64(env.ID[1])
	}
	reg = federation.New(env, store, cfg)
	reg.Start()
	h := &RegistryHandle{Reg: reg, Env: env, LAN: lan, Addr: addr, w: w}
	w.Registries = append(w.Registries, h)
	return h
}

func ontologyDocument(o *ontology.Ontology) []byte {
	return []byte(rdf.EncodeNTriples(o.ToGraph()))
}

// AddService deploys and starts a service node hosting the given
// descriptions.
func (w *World) AddService(lan, name string, cfg node.ServiceConfig, descs ...describe.Description) *ServiceHandle {
	addr := transport.Addr(lan + "/" + name)
	var svc *node.Service
	env := w.env(addr, lan, func(e *runtime.Env) transport.Handler {
		return func(from transport.Addr, data []byte) { runtime.Dispatch(svc, e, from, data) }
	})
	svc = node.NewService(env, w.models, cfg, descs...)
	svc.Start()
	h := &ServiceHandle{Svc: svc, Env: env, LAN: lan, Addr: addr, Descs: descs, w: w}
	w.Services = append(w.Services, h)
	return h
}

// AddClient deploys and starts a client node. The world's shared
// description models are injected so fallback results rank by match
// quality, unless the config brings its own.
func (w *World) AddClient(lan, name string, cfg node.ClientConfig) *ClientHandle {
	if cfg.Models == nil {
		cfg.Models = w.models
	}
	addr := transport.Addr(lan + "/" + name)
	var cli *node.Client
	env := w.env(addr, lan, func(e *runtime.Env) transport.Handler {
		return func(from transport.Addr, data []byte) { runtime.Dispatch(cli, e, from, data) }
	})
	cli = node.NewClient(env, cfg)
	cli.Start()
	h := &ClientHandle{Cli: cli, Env: env, LAN: lan, Addr: addr, w: w}
	w.Clients = append(w.Clients, h)
	return h
}

// Run advances virtual time.
func (w *World) Run(d time.Duration) { w.Net.RunFor(d) }

// Crash abruptly fails a registry: no departure message, timers halted.
func (h *RegistryHandle) Crash() {
	h.Reg.Crash()
	h.w.Net.SetUp(h.Addr, false)
}

// Crash abruptly fails a service node.
func (h *ServiceHandle) Crash() {
	h.Svc.Crash()
	h.w.Net.SetUp(h.Addr, false)
}

// PeerInfo returns the registry's connection info for seeding.
func (h *RegistryHandle) PeerInfo() wire.PeerInfo {
	return wire.PeerInfo{ID: h.Reg.ID(), Addr: string(h.Addr)}
}

// QueryOutcome is the synchronous result of ClientHandle.Query.
type QueryOutcome struct {
	node.QueryResult
	// Completed is false when the callback never fired within the
	// window (a bug or an extreme timeout configuration).
	Completed bool
	// Elapsed is virtual time from submission to callback.
	Elapsed time.Duration
}

// Query submits a query and runs the world until the callback fires or
// window elapses.
func (h *ClientHandle) Query(spec node.QuerySpec, window time.Duration) QueryOutcome {
	var out QueryOutcome
	start := h.w.Net.Now()
	h.Cli.Query(spec, func(r node.QueryResult) {
		out.QueryResult = r
		out.Completed = true
		out.Elapsed = h.w.Net.Now().Sub(start)
	})
	deadline := start.Add(window)
	for !out.Completed && h.w.Net.Now().Before(deadline) {
		// Advance in small steps so we stop soon after the callback.
		h.w.Net.RunFor(10 * time.Millisecond)
	}
	return out
}

// SemanticSpec builds a semantic query spec for a category.
func (w *World) SemanticSpec(category ontology.Class, ttl uint8) node.QuerySpec {
	q := &describe.SemanticQuery{Template: &profile.Template{Category: category}}
	return node.QuerySpec{Kind: describe.KindSemantic, Payload: q.Encode(), TTL: ttl}
}

// SemanticProfile builds a minimal semantic description for a category,
// naming the service by IRI.
func (w *World) SemanticProfile(serviceIRI string, category ontology.Class) describe.Description {
	return &describe.SemanticDescription{Profile: &profile.Profile{
		ServiceIRI:  serviceIRI,
		Category:    category,
		Grounding:   "urn:grounding:" + serviceIRI,
		OntologyIRI: w.Onto.IRI,
	}}
}

// StaleFraction computes, for a set of returned advertisements, the
// fraction whose providers are down — the staleness metric of E4.
func (w *World) StaleFraction(adverts []wire.Advertisement) float64 {
	if len(adverts) == 0 {
		return 0
	}
	stale := 0
	for _, a := range adverts {
		if !w.Net.IsUp(transport.Addr(a.ProviderAddr)) {
			stale++
		}
	}
	return float64(stale) / float64(len(adverts))
}

// Fmt renders a world summary line for experiment logs.
func (w *World) Fmt() string {
	return fmt.Sprintf("world{lans=%d regs=%d svcs=%d clis=%d}",
		len(w.Net.LANs()), len(w.Registries), len(w.Services), len(w.Clients))
}
