package wire

import (
	"fmt"

	"semdisco/internal/codec"
)

// Batch frames coalesce several marshaled envelopes into one datagram so
// small high-rate messages (lease renews, beacons, notify fan-out) share
// a syscall. The layout reuses the standard 3-byte header with a type
// byte reserved outside the MsgType space, then a message count and
// count length-prefixed complete envelope frames:
//
//	[0x53 'S'][0x44 'D'][version][0xBF][uvarint n] n x ([uvarint len][envelope frame])
//
// One batch is one datagram: loss, duplication, reordering and delay all
// apply to the whole frame, so a dropped batch degrades to exactly n
// dropped messages and can never corrupt a neighbouring one. Receivers
// that predate batching reject the unknown type byte and discard the
// frame silently, the same "cannot understand anyway" filtering the
// magic bytes provide.

// batchFrameType is the reserved envelope type byte marking a batch
// frame; it sits far outside the MsgType iota space so appending new
// message types can never collide with it.
const batchFrameType = 0xBF

// MaxBatchMessages bounds the per-frame message count a decoder accepts;
// beyond it the frame is treated as corrupt.
const MaxBatchMessages = 1 << 10

// batchHeaderLen is the fixed prefix before the message count.
const batchHeaderLen = 4

// IsBatchFrame reports whether a received datagram is a batch frame
// (valid header with the reserved batch type byte).
func IsBatchFrame(b []byte) bool {
	return len(b) >= batchHeaderLen &&
		b[0] == magic0 && b[1] == magic1 && b[2] == wireVersion && b[3] == batchFrameType
}

// FrameType returns the message type byte of a marshaled single-envelope
// frame, or false for short frames, foreign magic and batch frames.
// Batchers use it to classify already-encoded messages without decoding.
func FrameType(b []byte) (MsgType, bool) {
	if len(b) < 4 || b[0] != magic0 || b[1] != magic1 || b[2] != wireVersion || b[3] == batchFrameType {
		return 0, false
	}
	return MsgType(b[3]), true
}

// EncodeBatch coalesces marshaled envelope frames into a single batch
// frame. The returned slice is freshly allocated and owned by the
// caller; the input frames are only read.
func EncodeBatch(frames [][]byte) []byte {
	w := encodePool.Get().(*codec.Buffer)
	defer func() {
		w.Reset()
		encodePool.Put(w)
	}()
	w.Byte(magic0)
	w.Byte(magic1)
	w.Byte(wireVersion)
	w.Byte(batchFrameType)
	w.Uvarint(uint64(len(frames)))
	for _, f := range frames {
		w.BytesVar(f)
	}
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// BatchOverhead returns the encoded size a batch of n frames totalling
// payload bytes adds over sending the frames back to back; batchers use
// it for flush-on-size accounting without encoding twice.
func BatchOverhead(n int, frameLens []int) int {
	over := batchHeaderLen + UvarintLen(uint64(n))
	for _, l := range frameLens {
		over += UvarintLen(uint64(l))
	}
	return over
}

// UvarintLen returns the encoded size of v as a uvarint. Batchers use it
// with BatchOverhead to account for a candidate frame's length prefix
// incrementally, without re-walking their queues.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ForEachInBatch walks a batch frame, calling fn once per inner envelope
// frame in send order. The slices passed to fn alias the input buffer.
// Iteration stops at the first fn error; malformed frames (bad header,
// oversized counts, truncated or trailing bytes) return an error the
// caller treats as "silently discard".
func ForEachInBatch(b []byte, fn func(msg []byte) error) error {
	if !IsBatchFrame(b) {
		return fmt.Errorf("wire: not a batch frame")
	}
	r := codec.NewReader(b[batchHeaderLen:])
	n, err := r.Uvarint()
	if err != nil {
		return err
	}
	if n > MaxBatchMessages {
		return fmt.Errorf("wire: batch count %d exceeds limit %d", n, MaxBatchMessages)
	}
	for i := uint64(0); i < n; i++ {
		f, err := r.BytesVar()
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return r.Expect("batch")
}

// BatchCount returns the number of inner frames a batch frame declares,
// or 0 when b is not a well-formed batch header. It does not validate
// the inner frames.
func BatchCount(b []byte) int {
	if !IsBatchFrame(b) {
		return 0
	}
	r := codec.NewReader(b[batchHeaderLen:])
	n, err := r.Uvarint()
	if err != nil || n > MaxBatchMessages {
		return 0
	}
	return int(n)
}
