// Package runtime provides the execution environment protocol state
// machines run in: identity, transport attachment, clock, and UUID
// generation. All protocol logic (registry federation, service and
// client roles, discovery bootstrap) is written as synchronous handlers
// against an Env; the environment guarantees handlers and timer
// callbacks never run concurrently — the simulator by construction
// (single event loop), the UDP runtime by serializing onto one
// goroutine per node.
//
// The one concurrency escape hatch is WorkerPool: read-only work may
// leave the serialized path as long as its results re-enter through
// Clock.After. Pool usage is observable via the runtime.pool.* metrics
// (see OBSERVABILITY.md).
package runtime

import (
	"fmt"

	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// Env is one node's execution environment.
type Env struct {
	// ID is the node's stable identity.
	ID wire.NodeID
	// Iface is the node's network attachment.
	Iface transport.Iface
	// Clock provides time and timers.
	Clock transport.Clock
	// Gen yields UUIDs; deterministic in simulation.
	Gen *uuid.Generator
	// Trace, when non-nil, receives debug lines.
	Trace func(format string, args ...any)

	// dec is the node's zero-alloc envelope decoder, lazily built on
	// first dispatch. Handlers run serialized per node, so one decoder
	// per Env is safe; its output is borrowed (valid only within the
	// HandleEnvelope call), which is exactly the transport.Handler
	// retention contract.
	dec *wire.Decoder
}

// Addr returns the node's transport address.
func (e *Env) Addr() transport.Addr { return e.Iface.Addr() }

// NewUUID draws a fresh UUID.
func (e *Env) NewUUID() uuid.UUID {
	if e.Gen != nil {
		return e.Gen.New()
	}
	return uuid.New()
}

// Envelope wraps a body with this node's identity and a fresh message ID.
func (e *Env) Envelope(body wire.Body) *wire.Envelope {
	return wire.NewEnvelope(e.ID, string(e.Addr()), body, e.Gen)
}

// Send marshals and unicasts a body.
func (e *Env) Send(to transport.Addr, body wire.Body) error {
	b, err := wire.Marshal(e.Envelope(body))
	if err != nil {
		return fmt.Errorf("runtime: marshal %T: %w", body, err)
	}
	return e.Iface.Unicast(to, b)
}

// Multicast marshals and multicasts a body on the local LAN scope.
func (e *Env) Multicast(body wire.Body) error {
	b, err := wire.Marshal(e.Envelope(body))
	if err != nil {
		return fmt.Errorf("runtime: marshal %T: %w", body, err)
	}
	return e.Iface.Multicast(b)
}

// Tracef emits a debug line when tracing is enabled.
func (e *Env) Tracef(format string, args ...any) {
	if e.Trace != nil {
		e.Trace(format, args...)
	}
}

// Handler is the message entry point every protocol node implements.
type Handler interface {
	// HandleEnvelope processes one received protocol message. The from
	// address is the transport-level sender (which for forwarded
	// messages differs from the envelope's original FromAddr).
	HandleEnvelope(env *wire.Envelope, from transport.Addr)
}

// Dispatch decodes a datagram and passes it to the handler, silently
// discarding undecodable messages — the paper's "quickly filter and
// silently discard messages they cannot understand anyway". Coalesced
// batch frames are split and dispatched message by message in send
// order, so a handler never sees the batching layer.
//
// Decoding uses the Env's reused zero-alloc decoder: the envelope and
// its body are borrowed and valid only for the duration of the
// HandleEnvelope call. Handlers that retain payloads, adverts or peer
// lists must copy them (wire.CloneAdverts / wire.CloneBytes); decoded
// strings are interned and safe to retain.
func Dispatch(h Handler, e *Env, from transport.Addr, data []byte) {
	if wire.IsBatchFrame(data) {
		if err := wire.ForEachInBatch(data, func(msg []byte) error {
			dispatchOne(h, e, from, msg)
			return nil
		}); err != nil {
			e.Tracef("discard batch from %s: %v", from, err)
		}
		return
	}
	dispatchOne(h, e, from, data)
}

func dispatchOne(h Handler, e *Env, from transport.Addr, data []byte) {
	if e.dec == nil {
		e.dec = wire.NewDecoder()
	}
	env, err := e.dec.Decode(data)
	if err != nil {
		e.Tracef("discard from %s: %v", from, err)
		return
	}
	if env.From == e.ID {
		return // our own multicast looped back
	}
	h.HandleEnvelope(env, from)
}
