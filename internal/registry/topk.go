package registry

import (
	"sort"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/match"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// hit is one matched advertisement during selection. The advert is
// snapshotted by value: stored records live in recyclable arena slots,
// so nothing derived from a *stored may outlive the shard lock. The
// copy is cheap — the Payload field is a slice header aliasing the
// immutable publish-time backing array.
type hit struct {
	adv wire.Advertisement
	key string // service key, the pre-ID ranking tiebreaker
	ev  describe.Evaluation
	// expires is the lease deadline the advert was alive until when
	// collected; the query result cache takes the minimum over a result
	// set as the entry's freshness horizon. Zero when untracked
	// (MergeRank candidates).
	expires time.Time
}

// hitBefore is the ranking total order: the shared match.CompareQuality
// rule (higher degree first, then higher score), then service key, then
// advertisement ID. IDs are unique, so the order is strict — the top-K
// set is independent of evaluation order.
func hitBefore(a, b hit) bool {
	if c := match.CompareQuality(a.ev.Degree, a.ev.Score, b.ev.Degree, b.ev.Score); c != 0 {
		return c < 0
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return uuid.Compare(a.adv.ID, b.adv.ID) < 0
}

func sortHits(hits []hit) {
	sort.Slice(hits, func(i, j int) bool { return hitBefore(hits[i], hits[j]) })
}

// topK keeps the K best hits seen so far in a bounded heap with the
// *worst* kept hit at the root, so replacing it when a better hit
// arrives is O(log K). This caps selection memory at K instead of the
// full hit count and removes the O(n log n) sort over every match.
//
// The heap is built lazily: while fewer than K hits arrived, push is a
// plain append — queries whose hit count never reaches the cap (the
// common narrow case) pay nothing for the bound.
type topK struct {
	k      int
	hits   []hit
	heaped bool
	// dropped counts matches discarded because the bound was full —
	// evidence the result cap truncated the match set (response
	// control actually bit, §3.1).
	dropped int
}

func newTopK(k int) *topK { return &topK{k: k} }

// worse reports whether hits[i] ranks after hits[j] — the heap is a
// min-heap under ranking quality.
func (t *topK) worse(i, j int) bool { return hitBefore(t.hits[j], t.hits[i]) }

func (t *topK) push(h hit) {
	if t.k <= 0 {
		return
	}
	if len(t.hits) < t.k {
		t.hits = append(t.hits, h)
		return
	}
	if !t.heaped {
		for i := len(t.hits)/2 - 1; i >= 0; i-- {
			t.down(i)
		}
		t.heaped = true
	}
	t.dropped++
	if !hitBefore(h, t.hits[0]) {
		return // not better than the current worst kept hit
	}
	t.hits[0] = h
	t.down(0)
}

func (t *topK) down(i int) {
	n := len(t.hits)
	for {
		worst := i
		if l := 2*i + 1; l < n && t.worse(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		t.hits[i], t.hits[worst] = t.hits[worst], t.hits[i]
		i = worst
	}
}
