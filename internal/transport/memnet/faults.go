// Fault injection for the simulated network: per-link and per-scope
// fault profiles layered on top of the base latency/loss model, driven
// by the same deterministic seed so every chaos scenario replays
// identically. The primitives model the failure classes the paper's
// dynamic environments exhibit (§4.5): bursty wireless loss
// (Gilbert-Elliott), datagram duplication and reordering (retransmitting
// link layers), asymmetric congestion delay spikes, and timed network
// partitions with heal events.
//
// Profiles are installed directly (SetFault) or scripted as a
// FaultSchedule of inject/heal events executed at virtual times —
// a deterministic nemesis in the Jepsen sense.
package memnet

import (
	"fmt"
	"time"

	"semdisco/internal/obs"
	"semdisco/internal/transport"
)

// Fault-injection observability, alongside the base transport.sim.*
// traffic counters. Documented in OBSERVABILITY.md.
var (
	mFaultDropped = obs.NewCounter("transport.sim.fault.dropped.msgs", "count",
		"datagrams dropped by an injected fault profile (burst-loss draws)")
	mFaultDuplicated = obs.NewCounter("transport.sim.fault.dup.msgs", "count",
		"extra datagram copies injected by duplication faults")
	mFaultReordered = obs.NewCounter("transport.sim.fault.reordered.msgs", "count",
		"datagrams held back so later traffic overtakes them")
	mFaultDelayed = obs.NewCounter("transport.sim.fault.delayed.msgs", "count",
		"datagrams hit by an injected delay spike")
	mFaultEvents = obs.NewCounter("transport.sim.fault.events", "count",
		"fault-schedule events executed (inject, heal, partition)")
)

// FaultProfile describes the fault behaviour of one scope. The zero
// value injects nothing. Loss follows the Gilbert-Elliott two-state
// model: the link flips between a good and a bad state with the given
// per-datagram transition probabilities, and each state drops datagrams
// with its own probability — bursty loss, unlike the uniform base
// Config.Loss.
type FaultProfile struct {
	// LossGood / LossBad are drop probabilities in the good and bad
	// states. A uniform-loss profile sets both equal and leaves the
	// transition probabilities zero.
	LossGood float64
	LossBad  float64
	// PGoodBad / PBadGood are the per-datagram state transition
	// probabilities good→bad and bad→good. PBadGood controls mean burst
	// length (1/PBadGood datagrams); PGoodBad controls burst frequency.
	PGoodBad float64
	PBadGood float64
	// DupProb duplicates a delivered datagram with this probability; the
	// copy takes an independent latency draw (so copies may reorder).
	DupProb float64
	// ReorderProb holds a datagram back by ReorderDelay so traffic sent
	// after it arrives first.
	ReorderProb  float64
	ReorderDelay time.Duration
	// SpikeProb adds SpikeDelay to a datagram's latency — a congestion
	// or retransmission delay spike. Applied per direction, so an
	// asymmetric link installs a profile on one directed scope only.
	SpikeProb  float64
	SpikeDelay time.Duration
}

// zero reports whether the profile injects nothing.
func (p FaultProfile) zero() bool { return p == FaultProfile{} }

// Fault scopes name the traffic a profile applies to. Resolution is
// most-specific-first per datagram: the directed link scope, then the
// scope of the traffic class (LAN segment or WAN), then ScopeAll.
const (
	// ScopeAll matches every datagram.
	ScopeAll = "*"
	// ScopeWAN matches datagrams crossing LAN segments.
	ScopeWAN = "wan"
)

// ScopeLAN matches datagrams between nodes on one LAN segment.
func ScopeLAN(lan string) string { return "lan:" + lan }

// ScopeLink matches datagrams from one address to another — a directed
// scope, so asymmetric faults install on a single direction.
func ScopeLink(from, to transport.Addr) string {
	return fmt.Sprintf("link:%s>%s", from, to)
}

// faultState is one installed profile plus its Gilbert-Elliott loss
// state (bad=true while inside a loss burst).
type faultState struct {
	profile FaultProfile
	bad     bool
}

// SetFault installs (or replaces) the fault profile for a scope. The
// Gilbert-Elliott state restarts in the good state. A zero profile is
// equivalent to ClearFault.
func (n *Network) SetFault(scope string, p FaultProfile) {
	if p.zero() {
		n.ClearFault(scope)
		return
	}
	if n.faults == nil {
		n.faults = make(map[string]*faultState)
	}
	n.faults[scope] = &faultState{profile: p}
}

// ClearFault removes the profile installed for a scope.
func (n *Network) ClearFault(scope string) { delete(n.faults, scope) }

// ClearFaults removes every installed fault profile.
func (n *Network) ClearFaults() { n.faults = nil }

// faultFor resolves the profile governing one datagram,
// most-specific-first.
func (n *Network) faultFor(from, to *node) *faultState {
	if len(n.faults) == 0 {
		return nil
	}
	if f, ok := n.faults[ScopeLink(from.addr, to.addr)]; ok {
		return f
	}
	if from.lan == to.lan {
		if f, ok := n.faults[ScopeLAN(from.lan)]; ok {
			return f
		}
	} else if f, ok := n.faults[ScopeWAN]; ok {
		return f
	}
	return n.faults[ScopeAll]
}

// faultVerdict is the per-datagram outcome of the installed faults.
type faultVerdict struct {
	drop  bool
	dup   bool
	extra time.Duration
}

// apply draws this datagram's fate from the fault state, advancing the
// Gilbert-Elliott chain. All randomness comes from the network's
// dedicated fault RNG so chaos runs replay exactly per seed.
func (n *Network) applyFault(f *faultState) faultVerdict {
	var v faultVerdict
	p := f.profile
	// Advance the loss chain first, then draw loss in the new state:
	// bursts begin with the datagram that flipped the state.
	if f.bad {
		if p.PBadGood > 0 && n.faultRng.Float64() < p.PBadGood {
			f.bad = false
		}
	} else if p.PGoodBad > 0 && n.faultRng.Float64() < p.PGoodBad {
		f.bad = true
	}
	loss := p.LossGood
	if f.bad {
		loss = p.LossBad
	}
	if loss > 0 && n.faultRng.Float64() < loss {
		v.drop = true
		n.stats.Faults.Dropped++
		mFaultDropped.Inc()
		return v
	}
	if p.SpikeProb > 0 && n.faultRng.Float64() < p.SpikeProb {
		v.extra += p.SpikeDelay
		n.stats.Faults.Delayed++
		mFaultDelayed.Inc()
	}
	if p.ReorderProb > 0 && n.faultRng.Float64() < p.ReorderProb {
		v.extra += p.ReorderDelay
		n.stats.Faults.Reordered++
		mFaultReordered.Inc()
	}
	if p.DupProb > 0 && n.faultRng.Float64() < p.DupProb {
		v.dup = true
		n.stats.Faults.Duplicated++
		mFaultDuplicated.Inc()
	}
	return v
}

// FaultEvent is one step of a scripted chaos scenario, executed At
// (relative to schedule installation) on the event loop. Exactly one of
// the action fields should be set; a zero event is a no-op.
type FaultEvent struct {
	// At is the virtual-time offset from InstallFaults.
	At time.Duration
	// Scope plus Profile installs a fault profile; Profile nil with a
	// non-empty Scope clears that scope's profile.
	Scope   string
	Profile *FaultProfile
	// Partition installs connectivity islands (see Network.Partition).
	Partition [][]transport.Addr
	// Heal heals all partitions.
	Heal bool
}

// FaultSchedule is a scripted sequence of fault events — a
// deterministic nemesis: inject at t, heal at t'.
type FaultSchedule []FaultEvent

// InstallFaults schedules every event of a chaos script relative to the
// current virtual time. Multiple schedules may be installed; events
// interleave by time as usual.
func (n *Network) InstallFaults(s FaultSchedule) {
	for _, ev := range s {
		ev := ev
		n.After(ev.At, func() {
			n.stats.Faults.Events++
			mFaultEvents.Inc()
			switch {
			case ev.Partition != nil:
				n.Partition(ev.Partition...)
			case ev.Heal:
				n.Partition()
			case ev.Scope != "":
				if ev.Profile == nil {
					n.ClearFault(ev.Scope)
				} else {
					n.SetFault(ev.Scope, *ev.Profile)
				}
			}
		})
	}
}
