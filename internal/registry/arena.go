package registry

import (
	"sync"

	"semdisco/internal/wire"
)

// tok is a store-interned summary-token ID. Tokens are the currency of
// both the advert token index and the subscription posting lists;
// interning them once per store replaces per-advert []string slices and
// string-keyed bucket maps with int32 IDs, which is what lets one
// registry hold millions of adverts in bounded memory (a URI-model
// population shares a few hundred type URIs across the whole store).
type tok int32

// tokenInterner is the store-wide string↔tok table. It only ever
// grows: tokens are tiny relative to adverts and a stable ID space
// means a posting list compiled at Subscribe time stays valid for the
// subscription's whole life. Reads (query-token resolution, summary
// rendering) take the read lock; interning takes the write lock only
// on a genuinely new token.
type tokenInterner struct {
	mu   sync.RWMutex
	ids  map[string]tok
	strs []string
}

func newTokenInterner() *tokenInterner {
	return &tokenInterner{ids: make(map[string]tok)}
}

// intern returns the ID for s, assigning a fresh one on first sight.
func (ti *tokenInterner) intern(s string) tok {
	ti.mu.RLock()
	t, ok := ti.ids[s]
	ti.mu.RUnlock()
	if ok {
		return t
	}
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if t, ok := ti.ids[s]; ok {
		return t
	}
	t = tok(len(ti.strs))
	ti.ids[s] = t
	ti.strs = append(ti.strs, s)
	mTokensInterned.Add(1)
	return t
}

// internAll interns every token, deduplicating — the old map-backed
// buckets collapsed duplicate tokens implicitly, and the dense posting
// slices rely on each (record, token) pair appearing once.
func (ti *tokenInterner) internAll(tokens []string) []tok {
	if len(tokens) == 0 {
		return nil
	}
	out := make([]tok, 0, len(tokens))
	for _, s := range tokens {
		t := ti.intern(s)
		dup := false
		for _, prev := range out {
			if prev == t {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	return out
}

// lookupAll resolves query tokens to IDs, skipping tokens never seen by
// this store — a token with no ID has no posting bucket, so no stored
// advert can carry it. Resolution happens per evaluation (never cached
// in the plan): a token absent now may be interned by a later publish.
func (ti *tokenInterner) lookupAll(tokens []string) []tok {
	if len(tokens) == 0 {
		return nil
	}
	out := make([]tok, 0, len(tokens))
	ti.mu.RLock()
	for _, s := range tokens {
		if t, ok := ti.ids[s]; ok {
			out = append(out, t)
		}
	}
	ti.mu.RUnlock()
	return out
}

// str returns the string for an interned token (summary rendering).
func (ti *tokenInterner) str(t tok) string {
	ti.mu.RLock()
	defer ti.mu.RUnlock()
	if int(t) < 0 || int(t) >= len(ti.strs) {
		return ""
	}
	return ti.strs[t]
}

// size reports the number of interned tokens (tests and stats).
func (ti *tokenInterner) size() int {
	ti.mu.RLock()
	defer ti.mu.RUnlock()
	return len(ti.strs)
}

// defaultArenaSlab is the stored-record count per arena slab. 1024
// records ≈ a few hundred kB per slab: big enough that a million-advert
// shard allocates ~60 slabs instead of a million loose heap objects,
// small enough that a near-empty store wastes little.
const defaultArenaSlab = 1024

// alloc hands out a zeroed stored record from the shard arena — the
// free list first, then the bump pointer, growing by one slab when the
// arena is full. The caller holds the shard write lock and must fully
// initialize the record before linking it into any index.
//
// Records live in large contiguous slabs instead of individual heap
// allocations, so a million-advert shard is ~len/slabSize objects for
// the GC to trace rather than a million, and freed slots are recycled
// without returning memory to the allocator. Slot reuse is what makes
// the snapshot discipline load-bearing: nothing derived from a *stored
// may be dereferenced after the shard lock is released (see hit and
// removedAdvert).
func (sh *shard) alloc() *stored {
	if n := len(sh.free); n > 0 {
		slot := sh.free[n-1]
		sh.free = sh.free[:n-1]
		mArenaFree.Add(-1)
		st := sh.slotAt(slot)
		st.slot = slot
		return st
	}
	if int(sh.next) == len(sh.slabs)*sh.slabSize {
		sh.slabs = append(sh.slabs, make([]stored, sh.slabSize))
		mArenaSlabs.Add(1)
	}
	slot := sh.next
	sh.next++
	st := sh.slotAt(slot)
	st.slot = slot
	return st
}

// slotAt maps a slot number to its record in the slab matrix.
func (sh *shard) slotAt(slot int32) *stored {
	return &sh.slabs[int(slot)/sh.slabSize][int(slot)%sh.slabSize]
}

// release clears a record's references (so the GC can reclaim payloads
// and descriptions) and returns its slot to the free list. The caller
// holds the shard write lock and has already unlinked the record from
// every index. Fields are cleared individually — a struct assignment
// would copy the atomic svcSeq, which vet rejects.
func (sh *shard) release(st *stored) {
	slot := st.slot
	st.advert = wire.Advertisement{}
	st.desc = nil
	st.toks = nil
	st.tokPos = nil
	st.kindPos = -1
	st.ntPos = -1
	st.svcSeq.Store(0)
	sh.free = append(sh.free, slot)
	mArenaFree.Add(1)
}
