// Package memnet is the deterministic simulated network the experiments
// run on: LAN segments with multicast scope, WAN unicast links,
// configurable latency and loss, node failures and network partitions,
// and byte-exact traffic accounting per protocol message category.
//
// The network owns virtual time: all deliveries and timers are events
// on one priority queue, executed in (time, sequence) order by Run.
// Protocol state machines therefore execute single-threaded and every
// experiment with the same seed replays identically.
package memnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"semdisco/internal/obs"
	"semdisco/internal/transport"
	"semdisco/internal/wire"
)

// Simulator-wide observability: the same send/deliver/drop accounting
// Stats keeps per network, mirrored into the process-wide obs registry
// so cmd/simdisco can print per-phase traffic diffs alongside the
// protocol counters. Documented in OBSERVABILITY.md.
var (
	mSentMsgs = obs.NewCounter("transport.sim.sent.msgs", "count",
		"simulated datagram transmissions")
	mSentBytes = obs.NewCounter("transport.sim.sent.bytes", "bytes",
		"simulated bytes at the sender, once per transmission")
	mDelivered = obs.NewCounter("transport.sim.delivered.msgs", "count",
		"simulated datagram deliveries (multicast counts per receiver)")
	mDropped = obs.NewCounter("transport.sim.dropped.msgs", "count",
		"simulated datagrams lost to loss draws, partitions or dead nodes")
)

// Config tunes the simulated network. The zero value is a lossless
// zero-jitter network with 1 ms LAN latency and 20 ms WAN latency.
type Config struct {
	// Seed drives all randomness (latency jitter, loss draws).
	Seed int64
	// LANLatency is the base one-way delay within a LAN segment.
	LANLatency time.Duration
	// WANLatency is the base one-way delay between LAN segments.
	WANLatency time.Duration
	// Jitter adds up to this much uniform extra delay per message.
	Jitter time.Duration
	// Loss is the probability in [0,1) that any single datagram is
	// dropped (wireless links in the paper's environments are lossy).
	Loss float64
	// Start is the initial virtual time; zero means the Unix epoch.
	Start time.Time
}

func (c Config) withDefaults() Config {
	if c.LANLatency == 0 {
		c.LANLatency = time.Millisecond
	}
	if c.WANLatency == 0 {
		c.WANLatency = 20 * time.Millisecond
	}
	if c.Start.IsZero() {
		c.Start = time.Unix(0, 0).UTC()
	}
	return c
}

// Network is the simulated network plus its virtual-time scheduler.
// It is not safe for concurrent use; everything runs on the event loop.
type Network struct {
	cfg   Config
	rng   *rand.Rand
	now   time.Time
	seq   uint64
	queue eventQueue
	nodes map[transport.Addr]*node

	// partition maps an address to its partition ID; addresses in
	// different partitions cannot exchange messages. Empty map means no
	// partition (everyone connected).
	partition map[transport.Addr]int

	// faults holds the installed fault profiles by scope (see
	// faults.go); faultRng is a dedicated deterministic stream so
	// installing a profile does not perturb the base jitter/loss draws.
	faults   map[string]*faultState
	faultRng *rand.Rand

	stats Stats
}

type node struct {
	addr    transport.Addr
	lan     string
	handler transport.Handler
	up      bool
	closed  bool
}

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Stats is the network's cumulative traffic accounting, broken down by
// the wire protocol's operation categories — the paper's bandwidth
// dimension.
type Stats struct {
	// MessagesSent counts transmissions (one multicast to k receivers
	// counts as 1 transmission and k deliveries).
	MessagesSent uint64
	// MessagesDelivered counts successful deliveries.
	MessagesDelivered uint64
	// MessagesDropped counts losses, partition drops and down-node
	// drops.
	MessagesDropped uint64
	// BytesSent sums datagram sizes at the sender, once per
	// transmission.
	BytesSent uint64
	// BytesDelivered sums datagram sizes at receivers (a multicast of
	// b bytes to k receivers adds k·b — the broadcast-medium load the
	// paper worries about).
	BytesDelivered uint64
	// ByCategory breaks sent bytes/messages down by protocol category.
	ByCategory [3]CategoryStats
	// DeliveredByCategory breaks delivered bytes/messages down by
	// category; a multicast counts once per receiver, measuring the
	// actual load on the (possibly broadcast) medium.
	DeliveredByCategory [3]CategoryStats
	// Faults accounts injected-fault activity (fault drops also count
	// in MessagesDropped).
	Faults FaultStats
}

// FaultStats is the cumulative fault-injection accounting.
type FaultStats struct {
	// Dropped counts datagrams lost to burst-loss draws.
	Dropped uint64
	// Duplicated counts extra datagram copies injected.
	Duplicated uint64
	// Reordered counts datagrams held back past later traffic.
	Reordered uint64
	// Delayed counts datagrams hit by delay spikes.
	Delayed uint64
	// Events counts executed fault-schedule events.
	Events uint64
}

// CategoryStats is traffic for one protocol message category.
type CategoryStats struct {
	Messages uint64
	Bytes    uint64
}

// New returns an empty network.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		faultRng:  rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
		now:       cfg.Start,
		nodes:     make(map[transport.Addr]*node),
		partition: make(map[transport.Addr]int),
	}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.now }

// Stats returns a copy of the cumulative traffic statistics.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the traffic accounting (used between experiment
// warm-up and measurement phases).
func (n *Network) ResetStats() { n.stats = Stats{} }

// errClosed is returned when sending through a closed interface.
var errClosed = errors.New("memnet: interface closed")

// Attach adds a node to the network on the given LAN segment. The
// handler is invoked on the event loop for every delivered datagram.
// Attaching an existing address replaces its handler and brings the
// node up (modelling a process restart).
func (n *Network) Attach(addr transport.Addr, lan string, handler transport.Handler) transport.Iface {
	nd := &node{addr: addr, lan: lan, handler: handler, up: true}
	n.nodes[addr] = nd
	return &iface{net: n, node: nd}
}

// SetUp marks a node up or down. Messages to and from down nodes are
// dropped — the abrupt service/registry crash of the paper's dynamic
// environments.
func (n *Network) SetUp(addr transport.Addr, up bool) {
	if nd, ok := n.nodes[addr]; ok {
		nd.up = up
	}
}

// IsUp reports whether a node is attached and up.
func (n *Network) IsUp(addr transport.Addr) bool {
	nd, ok := n.nodes[addr]
	return ok && nd.up && !nd.closed
}

// Partition assigns nodes to connectivity islands: addresses sharing a
// group number can communicate, others cannot. Call with no arguments
// to heal all partitions.
func (n *Network) Partition(groups ...[]transport.Addr) {
	n.partition = make(map[transport.Addr]int)
	for i, g := range groups {
		for _, a := range g {
			n.partition[a] = i + 1
		}
	}
}

func (n *Network) connected(a, b transport.Addr) bool {
	if len(n.partition) == 0 {
		return true
	}
	ga, gb := n.partition[a], n.partition[b]
	// Nodes not mentioned in any group (0) are isolated once a
	// partition exists, unless talking to themselves.
	return ga == gb && ga != 0
}

// Schedule runs fn at the given virtual time (clamped to now).
func (n *Network) Schedule(at time.Time, fn func()) transport.CancelFunc {
	if at.Before(n.now) {
		at = n.now
	}
	e := &event{at: at, seq: n.seq, fn: fn}
	n.seq++
	heap.Push(&n.queue, e)
	return func() { e.fn = nil }
}

// After schedules fn to run d from now; it implements transport.Clock.
func (n *Network) After(d time.Duration, fn func()) transport.CancelFunc {
	return n.Schedule(n.now.Add(d), fn)
}

// Run executes events until the queue is empty or virtual time exceeds
// until. It returns the number of events executed.
func (n *Network) Run(until time.Time) int {
	executed := 0
	for n.queue.Len() > 0 {
		next := n.queue[0]
		if next.at.After(until) {
			break
		}
		heap.Pop(&n.queue)
		n.now = next.at
		if next.fn != nil {
			next.fn()
			executed++
		}
	}
	if n.now.Before(until) {
		n.now = until
	}
	return executed
}

// RunFor advances virtual time by d.
func (n *Network) RunFor(d time.Duration) int { return n.Run(n.now.Add(d)) }

// LANs returns the attached LAN segment names, sorted.
func (n *Network) LANs() []string {
	seen := map[string]bool{}
	for _, nd := range n.nodes {
		seen[nd.lan] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// NodesOn returns the addresses attached to a LAN segment, sorted.
func (n *Network) NodesOn(lan string) []transport.Addr {
	var out []transport.Addr
	for a, nd := range n.nodes {
		if nd.lan == lan {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (n *Network) account(data []byte) {
	n.stats.MessagesSent++
	n.stats.BytesSent += uint64(len(data))
	mSentMsgs.Inc()
	mSentBytes.Add(uint64(len(data)))
	accountCategory(data, &n.stats.ByCategory)
}

// accountCategory attributes a datagram to the protocol categories. A
// coalesced batch frame is opened up and attributed per inner message
// (its framing overhead stays in the total byte counters only), so the
// category split the experiments report survives batching unchanged.
func accountCategory(data []byte, cats *[3]CategoryStats) {
	if len(data) < 4 {
		return
	}
	if wire.IsBatchFrame(data) {
		_ = wire.ForEachInBatch(data, func(msg []byte) error {
			if len(msg) >= 4 {
				cat := wire.CategoryOf(wire.MsgType(msg[3]))
				cats[cat].Messages++
				cats[cat].Bytes += uint64(len(msg))
			}
			return nil
		})
		return
	}
	cat := wire.CategoryOf(wire.MsgType(data[3]))
	cats[cat].Messages++
	cats[cat].Bytes += uint64(len(data))
}

func (n *Network) latency(sameLAN bool) time.Duration {
	base := n.cfg.WANLatency
	if sameLAN {
		base = n.cfg.LANLatency
	}
	if n.cfg.Jitter > 0 {
		base += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	return base
}

func (n *Network) deliver(from *node, to *node, data []byte) {
	if !to.up || to.closed || !n.connected(from.addr, to.addr) {
		n.stats.MessagesDropped++
		mDropped.Inc()
		return
	}
	if n.cfg.Loss > 0 && n.rng.Float64() < n.cfg.Loss {
		n.stats.MessagesDropped++
		mDropped.Inc()
		return
	}
	var extra time.Duration
	dup := false
	if f := n.faultFor(from, to); f != nil {
		v := n.applyFault(f)
		if v.drop {
			n.stats.MessagesDropped++
			mDropped.Inc()
			return
		}
		extra, dup = v.extra, v.dup
	}
	payload := make([]byte, len(data))
	copy(payload, data)
	n.scheduleDelivery(from, to, payload, n.latency(from.lan == to.lan)+extra)
	if dup {
		// The duplicate takes an independent latency draw and skips the
		// injected extra delay, so the copies may arrive in either order.
		n.scheduleDelivery(from, to, payload, n.latency(from.lan == to.lan))
	}
}

func (n *Network) scheduleDelivery(from, to *node, payload []byte, lat time.Duration) {
	fromAddr := from.addr
	toAddr := to.addr
	n.Schedule(n.now.Add(lat), func() {
		// Re-check liveness at delivery time: the node may have crashed
		// while the datagram was in flight.
		cur, ok := n.nodes[toAddr]
		if !ok || !cur.up || cur.closed || cur.handler == nil {
			n.stats.MessagesDropped++
			mDropped.Inc()
			return
		}
		n.stats.MessagesDelivered++
		mDelivered.Inc()
		n.stats.BytesDelivered += uint64(len(payload))
		accountCategory(payload, &n.stats.DeliveredByCategory)
		cur.handler(fromAddr, payload)
	})
}

type iface struct {
	net  *Network
	node *node
}

func (i *iface) Addr() transport.Addr { return i.node.addr }

func (i *iface) Unicast(to transport.Addr, data []byte) error {
	if i.node.closed {
		return errClosed
	}
	if !i.node.up {
		return fmt.Errorf("memnet: node %s is down", i.node.addr)
	}
	i.net.account(data)
	dst, ok := i.net.nodes[to]
	if !ok {
		i.net.stats.MessagesDropped++
		return nil // best-effort, like UDP to a dead host
	}
	i.net.deliver(i.node, dst, data)
	return nil
}

// UnicastBatch implements transport.BatchSender: the simulator's
// equivalent of sendmmsg. Each element is still an independent datagram
// with its own latency, loss and fault draws — only the send operation
// is shared — so chaos injection stays per-datagram and a lost batch
// frame can never corrupt its neighbours.
func (i *iface) UnicastBatch(msgs []transport.Outgoing) error {
	for _, m := range msgs {
		if err := i.Unicast(m.To, m.Data); err != nil {
			return err
		}
	}
	return nil
}

func (i *iface) Multicast(data []byte) error {
	if i.node.closed {
		return errClosed
	}
	if !i.node.up {
		return fmt.Errorf("memnet: node %s is down", i.node.addr)
	}
	i.net.account(data)
	// Deterministic receiver order.
	for _, addr := range i.net.NodesOn(i.node.lan) {
		if addr == i.node.addr {
			continue
		}
		i.net.deliver(i.node, i.net.nodes[addr], data)
	}
	return nil
}

func (i *iface) Close() error {
	i.node.closed = true
	i.node.up = false
	return nil
}
