#!/usr/bin/env sh
# Runs the registry benchmarks with -benchmem and distils the output
# into BENCH_registry.json so the perf trajectory is diffable across
# PRs. The run's runtime metric snapshot (plan-cache hit rates, scan
# counts — see OBSERVABILITY.md) is stored under the "obs" key.
# Usage: scripts/bench.sh [benchtime]
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-1s}"
OUT="BENCH_registry.json"
RAW="$(mktemp)"
OBS="$(mktemp)"
trap 'rm -f "$RAW" "$OBS"' EXIT

SEMDISCO_OBS_OUT="$OBS" \
    go test -run '^$' -bench 'BenchmarkRegistry' -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkRegistryEvaluateBroad-8   3680   382880 ns/op   5531 B/op   10 allocs/op
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i - 1)
        if ($(i) == "B/op") bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_op\": %s", name, ns
    if (bytes != "") printf ", \"bytes_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_op\": %s", allocs
    printf "}"
}
END { printf ",\n  \"obs\": " }
' "$RAW" > "$OUT"

if [ -s "$OBS" ]; then
    # Re-indent the snapshot so it nests under the top-level object.
    sed '2,$s/^/  /' "$OBS" >> "$OUT"
else
    printf 'null' >> "$OUT"
fi
printf '\n}\n' >> "$OUT"

echo "wrote $OUT"
