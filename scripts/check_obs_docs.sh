#!/usr/bin/env sh
# Fails when the metric names registered in code (obs.NewCounter /
# NewGauge / NewHistogram call sites) drift from the names documented
# in OBSERVABILITY.md's reference tables. Run via `make docs-check`.
set -eu

cd "$(dirname "$0")/.."

CODE="$(mktemp)"
DOCS="$(mktemp)"
trap 'rm -f "$CODE" "$DOCS"' EXIT

# Metric registrations in code. Constructor calls always put the name
# literal on the call line, so a line-based grep is exact.
grep -rhoE 'obs\.New(Counter|Gauge|Histogram)\("[^"]+"' \
    --include='*.go' internal cmd examples 2>/dev/null |
    sed 's/.*("//; s/"$//' | sort -u > "$CODE"

# Backticked first-column names in OBSERVABILITY.md table rows.
grep -hoE '^\| `[a-z0-9._]+` \|' OBSERVABILITY.md |
    sed 's/^| `//; s/` |$//' | sort -u > "$DOCS"

if [ ! -s "$CODE" ]; then
    echo "check_obs_docs: found no metric registrations in code" >&2
    exit 1
fi

if ! diff -u "$DOCS" "$CODE" > /dev/null; then
    echo "check_obs_docs: OBSERVABILITY.md is out of sync with the code:" >&2
    echo "  (<) documented but not registered   (>) registered but undocumented" >&2
    diff "$DOCS" "$CODE" | grep '^[<>]' >&2
    exit 1
fi

echo "check_obs_docs: $(wc -l < "$CODE" | tr -d ' ') metrics documented and in sync"
