package codec

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	var w Buffer
	w.Uvarint(300)
	w.Varint(-42)
	w.Byte(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Float64(3.14159)
	w.String("hello verden")
	w.Bytes16([16]byte{1, 2, 3})
	w.BytesVar([]byte{9, 8, 7})
	w.StringSlice([]string{"a", "", "ccc"})

	r := NewReader(w.Bytes())
	if v, err := r.Uvarint(); err != nil || v != 300 {
		t.Fatalf("Uvarint = (%d, %v)", v, err)
	}
	if v, err := r.Varint(); err != nil || v != -42 {
		t.Fatalf("Varint = (%d, %v)", v, err)
	}
	if v, err := r.Byte(); err != nil || v != 0xAB {
		t.Fatalf("Byte = (%x, %v)", v, err)
	}
	if v, err := r.Bool(); err != nil || !v {
		t.Fatalf("Bool = (%v, %v)", v, err)
	}
	if v, err := r.Bool(); err != nil || v {
		t.Fatalf("Bool = (%v, %v)", v, err)
	}
	if v, err := r.Float64(); err != nil || v != 3.14159 {
		t.Fatalf("Float64 = (%v, %v)", v, err)
	}
	if v, err := r.String(); err != nil || v != "hello verden" {
		t.Fatalf("String = (%q, %v)", v, err)
	}
	if v, err := r.Bytes16(); err != nil || v != [16]byte{1, 2, 3} {
		t.Fatalf("Bytes16 = (%v, %v)", v, err)
	}
	if v, err := r.BytesVar(); err != nil || len(v) != 3 || v[0] != 9 {
		t.Fatalf("BytesVar = (%v, %v)", v, err)
	}
	if v, err := r.StringSlice(); err != nil || len(v) != 3 || v[2] != "ccc" {
		t.Fatalf("StringSlice = (%v, %v)", v, err)
	}
	if err := r.Expect("test message"); err != nil {
		t.Fatalf("Expect = %v", err)
	}
}

func TestTruncationEverywhere(t *testing.T) {
	var w Buffer
	w.Uvarint(5)
	w.String("hello")
	w.Float64(1.5)
	full := w.Bytes()
	// Every strict prefix must fail somewhere, never panic.
	for i := 0; i < len(full); i++ {
		r := NewReader(full[:i])
		_, err1 := r.Uvarint()
		var err2, err3 error
		if err1 == nil {
			_, err2 = r.String()
		}
		if err1 == nil && err2 == nil {
			_, err3 = r.Float64()
		}
		if err1 == nil && err2 == nil && err3 == nil {
			t.Fatalf("prefix of %d bytes decoded fully", i)
		}
	}
}

func TestTruncatedErrorsWrapSentinel(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Byte(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Byte error = %v, want ErrTruncated", err)
	}
	if _, err := r.Bytes16(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Bytes16 error = %v, want ErrTruncated", err)
	}
	var w Buffer
	w.Uvarint(uint64(MaxBytes) + 1)
	if _, err := NewReader(w.Bytes()).BytesVar(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversized BytesVar error = %v, want ErrTooLong", err)
	}
}

func TestCorruptCountDoesNotOverAllocate(t *testing.T) {
	var w Buffer
	w.Uvarint(1 << 20) // claims a million strings, provides none
	if _, err := NewReader(w.Bytes()).StringSlice(); err == nil {
		t.Fatal("corrupt count accepted")
	}
}

func TestExpectRejectsTrailingGarbage(t *testing.T) {
	var w Buffer
	w.Byte(1)
	w.Byte(2)
	r := NewReader(w.Bytes())
	if _, err := r.Byte(); err != nil {
		t.Fatal(err)
	}
	if err := r.Expect("msg"); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, s string, bs []byte, ss []string, fl float64) bool {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN; normalized payloads never carry NaN
		}
		var w Buffer
		w.Uvarint(u)
		w.Varint(i)
		w.String(s)
		w.BytesVar(bs)
		w.StringSlice(ss)
		w.Float64(fl)
		r := NewReader(w.Bytes())
		gu, e1 := r.Uvarint()
		gi, e2 := r.Varint()
		gs, e3 := r.String()
		gb, e4 := r.BytesVar()
		gss, e5 := r.StringSlice()
		gf, e6 := r.Float64()
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil || e5 != nil || e6 != nil {
			return false
		}
		if gu != u || gi != i || gs != s || gf != fl {
			return false
		}
		if string(gb) != string(bs) {
			return false
		}
		if len(gss) != len(ss) {
			return false
		}
		for k := range ss {
			if gss[k] != ss[k] {
				return false
			}
		}
		return r.Expect("prop") == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBytesNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		r := NewReader(b)
		// Exercise every reader method against arbitrary bytes; only
		// errors are acceptable, panics are not (the test harness turns
		// panics into failures).
		r.Uvarint()
		r.Varint()
		r.String()
		r.BytesVar()
		r.StringSlice()
		r.Bytes16()
		r.Float64()
		r.Byte()
		r.Bool()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
