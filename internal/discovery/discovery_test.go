package discovery

import (
	"testing"
	"time"

	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

type fixture struct {
	net  *memnet.Network
	gen  *uuid.Generator
	boot *Bootstrapper
	env  *runtime.Env
	// probes counts Probe messages seen by a fake registry observer.
	probes int
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	f := &fixture{net: memnet.New(memnet.Config{Seed: 3}), gen: uuid.NewGenerator(5)}
	env := &runtime.Env{ID: f.gen.New(), Clock: f.net, Gen: f.gen}
	dec := wire.NewDecoder()
	env.Iface = f.net.Attach("lan0/node", "lan0", func(from transport.Addr, data []byte) {
		e, err := dec.Decode(data)
		if err != nil {
			return
		}
		f.boot.Observe(e)
	})
	f.env = env
	f.boot = New(env, cfg)
	// A passive observer that counts probes on the LAN.
	f.net.Attach("lan0/observer", "lan0", func(from transport.Addr, data []byte) {
		if e, err := wire.Unmarshal(data); err == nil && e.Type == wire.TProbe {
			f.probes++
		}
	})
	return f
}

// fakeRegistry plants a registry presence by beacon or probe-match.
func (f *fixture) beacon(id uuid.UUID, addr string, peers ...wire.PeerInfo) {
	env := &wire.Envelope{Type: wire.TBeacon, From: id, FromAddr: addr, MsgID: f.gen.New(), Body: &wire.Beacon{Peers: peers}}
	f.boot.Observe(env)
}

func TestPassiveDiscoveryViaBeacon(t *testing.T) {
	f := newFixture(t, Config{})
	f.boot.Start()
	if _, ok := f.boot.Current(); ok {
		t.Fatal("registry known before any beacon")
	}
	rid := f.gen.New()
	f.beacon(rid, "lan0/r1")
	cur, ok := f.boot.Current()
	if !ok || cur.ID != rid || cur.Addr != "lan0/r1" {
		t.Fatalf("Current = (%+v, %v)", cur, ok)
	}
}

func TestActiveProbingUntilFound(t *testing.T) {
	f := newFixture(t, Config{ProbeInterval: 100 * time.Millisecond})
	f.boot.Start()
	f.net.RunFor(time.Second)
	if f.probes < 5 {
		t.Fatalf("probes while registry-less = %d, want repeated probing", f.probes)
	}
	f.beacon(f.gen.New(), "lan0/r1")
	before := f.probes
	f.net.RunFor(time.Second)
	// At most one already-in-flight probe may still be delivered.
	if f.probes > before+1 {
		t.Fatalf("probing continued after a registry was found (%d → %d)", before, f.probes)
	}
}

func TestOnRegistryFoundFiresOnTransition(t *testing.T) {
	f := newFixture(t, Config{})
	found := 0
	f.boot.OnRegistryFound(func() { found++ })
	f.boot.Start()
	rid := f.gen.New()
	f.beacon(rid, "lan0/r1")
	f.beacon(rid, "lan0/r1") // second beacon: no new transition
	if found != 1 {
		t.Fatalf("found fired %d times, want 1", found)
	}
	// Death then rediscovery fires again.
	f.boot.MarkDead(rid)
	f.beacon(rid, "lan0/r1")
	if found != 2 {
		t.Fatalf("found fired %d times after recovery, want 2", found)
	}
}

func TestSeedsAndSignaledAlternates(t *testing.T) {
	seedID := uuid.NewGenerator(9).New()
	f := newFixture(t, Config{Seeds: []wire.PeerInfo{{ID: seedID, Addr: "wan/r9"}}})
	f.boot.Start()
	cur, ok := f.boot.Current()
	if !ok || cur.ID != seedID {
		t.Fatalf("seeded registry not current: %+v", cur)
	}
	// A local beacon carrying alternates: local wins, alternates stored.
	localID, altID := f.gen.New(), f.gen.New()
	f.beacon(localID, "lan0/r1", wire.PeerInfo{ID: altID, Addr: "wan/r2"})
	cur, _ = f.boot.Current()
	if cur.ID != localID {
		t.Fatal("local registry not preferred over seed")
	}
	alts := f.boot.Alternates(localID)
	if len(alts) != 2 {
		t.Fatalf("alternates = %v, want seed + signaled", alts)
	}
}

func TestMarkDeadFailsOver(t *testing.T) {
	f := newFixture(t, Config{})
	f.boot.Start()
	r1, r2 := f.gen.New(), f.gen.New()
	f.beacon(r1, "lan0/r1")
	f.beacon(r2, "lan0/r2")
	cur, _ := f.boot.Current()
	f.boot.MarkDead(cur.ID)
	next, ok := f.boot.Current()
	if !ok || next.ID == cur.ID {
		t.Fatalf("failover did not switch registries: %+v", next)
	}
	f.boot.MarkDead(next.ID)
	if _, ok := f.boot.Current(); ok {
		t.Fatal("both dead but Current still returns one")
	}
	// A fresh beacon revives the table.
	f.beacon(r1, "lan0/r1")
	if _, ok := f.boot.Current(); !ok {
		t.Fatal("beacon did not revive a dead registry")
	}
}

func TestByeRemovesRegistry(t *testing.T) {
	f := newFixture(t, Config{})
	f.boot.Start()
	rid := f.gen.New()
	f.beacon(rid, "lan0/r1")
	f.boot.Observe(&wire.Envelope{Type: wire.TBye, From: rid, FromAddr: "lan0/r1", MsgID: f.gen.New(), Body: &wire.Bye{}})
	if _, ok := f.boot.Current(); ok {
		t.Fatal("departed registry still current")
	}
}

func TestLocalRegistryAgesOut(t *testing.T) {
	f := newFixture(t, Config{RegistryTTL: time.Second, ProbeInterval: 200 * time.Millisecond})
	f.boot.Start()
	f.beacon(f.gen.New(), "lan0/r1")
	f.net.RunFor(3 * time.Second) // no further beacons
	if _, ok := f.boot.Current(); ok {
		t.Fatal("silent registry did not age out")
	}
}

func TestSeedsDoNotAgeOut(t *testing.T) {
	seedID := uuid.NewGenerator(11).New()
	f := newFixture(t, Config{
		Seeds:         []wire.PeerInfo{{ID: seedID, Addr: "wan/r9"}},
		RegistryTTL:   500 * time.Millisecond,
		ProbeInterval: 200 * time.Millisecond,
	})
	f.boot.Start()
	f.net.RunFor(3 * time.Second)
	cur, ok := f.boot.Current()
	if !ok || cur.ID != seedID {
		t.Fatal("WAN seed aged out despite beacons not crossing LAN boundaries")
	}
}

func TestDeterministicPreference(t *testing.T) {
	f := newFixture(t, Config{})
	f.boot.Start()
	ids := []uuid.UUID{f.gen.New(), f.gen.New(), f.gen.New()}
	for i, id := range ids {
		f.beacon(id, "lan0/r"+string(rune('1'+i)))
	}
	lowest := ids[0]
	for _, id := range ids[1:] {
		if uuid.Compare(id, lowest) < 0 {
			lowest = id
		}
	}
	for i := 0; i < 5; i++ {
		cur, _ := f.boot.Current()
		if cur.ID != lowest {
			t.Fatalf("Current = %s, want lowest ID %s", cur.ID, lowest)
		}
	}
}
