package baseline_test

import (
	"fmt"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/discovery"
	"semdisco/internal/federation"
	"semdisco/internal/node"
	"semdisco/internal/sim"
	"semdisco/internal/wire"
)

func clientCfg(seed wire.PeerInfo) node.ClientConfig {
	return node.ClientConfig{
		QueryTimeout:   500 * time.Millisecond,
		FallbackWindow: 300 * time.Millisecond,
		Bootstrap:      discovery.Config{Seeds: []wire.PeerInfo{seed}, ProbeInterval: 200 * time.Millisecond},
	}
}

func serviceCfg(seed wire.PeerInfo) node.ServiceConfig {
	return node.ServiceConfig{
		Lease:      2 * time.Second,
		AckTimeout: 300 * time.Millisecond,
		Bootstrap:  discovery.Config{Seeds: []wire.PeerInfo{seed}, ProbeInterval: 200 * time.Millisecond},
	}
}

func TestCentralPublishAndQuery(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 21})
	central := w.AddCentral("lan0", "uddi")
	w.AddService("lan0", "s1", serviceCfg(central.PeerInfo()), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cli := w.AddClient("lan0", "c1", clientCfg(central.PeerInfo()))
	w.Run(2 * time.Second)
	if central.Central.Len() != 1 {
		t.Fatalf("central holds %d adverts", central.Central.Len())
	}
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 5*time.Second)
	if !out.Completed || len(out.Adverts) != 1 {
		t.Fatalf("central query = %+v", out)
	}
}

func TestCentralDoesNotAnswerProbes(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 22})
	w.AddCentral("lan0", "uddi")
	// A service with no seed must never find the central registry.
	svc := w.AddService("lan0", "s1", node.ServiceConfig{
		AckTimeout: 300 * time.Millisecond,
		Bootstrap:  discovery.Config{ProbeInterval: 200 * time.Millisecond},
	}, w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(3 * time.Second)
	if _, ok := svc.Svc.Bootstrapper().Current(); ok {
		t.Fatal("central registry answered multicast discovery — UDDI baseline must be static-config only")
	}
}

func TestCentralKeepsStaleAdverts(t *testing.T) {
	// The §4.8 critique: without leasing, a crashed provider's advert
	// stays discoverable forever.
	w := sim.NewWorld(sim.Config{Seed: 23})
	central := w.AddCentral("lan0", "uddi")
	svc := w.AddService("lan0", "s1", serviceCfg(central.PeerInfo()), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cli := w.AddClient("lan0", "c1", clientCfg(central.PeerInfo()))
	w.Run(2 * time.Second)
	svc.Crash()
	w.Run(30 * time.Second) // far beyond any lease the federated system would grant
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 5*time.Second)
	if len(out.Adverts) != 1 {
		t.Fatalf("stale advert count = %d, want 1 (UDDI keeps it)", len(out.Adverts))
	}
	if w.StaleFraction(out.Adverts) != 1.0 {
		t.Fatal("returned advert should be stale (provider down)")
	}
	// Explicit deregistration is the only removal path.
	central.Central.HandleEnvelope(&wire.Envelope{
		Type: wire.TRemove, From: svc.Env.ID, FromAddr: string(svc.Addr),
		MsgID: w.Gen.New(), Body: &wire.Remove{AdvertID: out.Adverts[0].ID},
	}, svc.Addr)
	if central.Central.Len() != 0 {
		t.Fatal("explicit remove failed")
	}
}

func TestCentralIsSinglePointOfFailure(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 24})
	central := w.AddCentral("lan0", "uddi")
	w.AddService("lan0", "s1", serviceCfg(central.PeerInfo()), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cfg := clientCfg(central.PeerInfo())
	cfg.MaxAttempts = 2
	cli := w.AddClient("lan0", "c1", cfg)
	w.Run(2 * time.Second)
	central.Crash()
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 20*time.Second)
	// The central system has no fallback of its own; our client's
	// decentralized fallback still works, proving the failure is the
	// registry's, not the network's.
	if out.Via == node.ViaRegistry {
		t.Fatalf("query answered via crashed central registry: %+v", out)
	}
}

func TestDHTPlacementAndExactQuery(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 25})
	ring := w.AddDHTRing([]string{"lan0", "lan1", "lan2"})
	entry := ring[0]
	w.AddService("lan0", "s1", serviceCfg(entry.PeerInfo()), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.AddService("lan1", "s2", serviceCfg(ring[1].PeerInfo()), w.SemanticProfile("urn:svc:cam", sim.C("CameraFeed")))
	cli := w.AddClient("lan2", "c1", clientCfg(ring[2].PeerInfo()))
	w.Run(2 * time.Second)
	total := 0
	for _, h := range ring {
		total += h.Node.Len()
	}
	if total != 2 {
		t.Fatalf("ring stores %d adverts, want 2", total)
	}
	// Exact category query works regardless of entry node.
	out := cli.Query(w.SemanticSpec(sim.C("RadarFeed"), 0), 5*time.Second)
	if !out.Completed || len(out.Adverts) != 1 {
		t.Fatalf("exact DHT query = %+v", out)
	}
}

func TestDHTCannotDoSubsumption(t *testing.T) {
	// The paper's structural claim (§3.3): hash-indexed registries
	// string-match only; a superclass query misses subtype services.
	w := sim.NewWorld(sim.Config{Seed: 26})
	ring := w.AddDHTRing([]string{"lan0", "lan1"})
	w.AddService("lan0", "s1", serviceCfg(ring[0].PeerInfo()), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cli := w.AddClient("lan1", "c1", clientCfg(ring[1].PeerInfo()))
	w.Run(2 * time.Second)
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 5*time.Second)
	if out.Via == node.ViaRegistry && len(out.Adverts) != 0 {
		t.Fatalf("DHT answered a subsumption query with %d results — baseline too strong", len(out.Adverts))
	}
}

func TestDHTURIQueries(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 27})
	ring := w.AddDHTRing([]string{"lan0", "lan1"})
	uriDesc := &describe.URIDescription{TypeURI: "urn:type:weather", ServiceURI: "urn:svc:w1", Addr: "a"}
	w.AddService("lan0", "s1", serviceCfg(ring[0].PeerInfo()), uriDesc)
	cli := w.AddClient("lan1", "c1", clientCfg(ring[1].PeerInfo()))
	w.Run(2 * time.Second)
	out := cli.Query(node.QuerySpec{
		Kind:    describe.KindURI,
		Payload: (&describe.URIQuery{TypeURI: "urn:type:weather"}).Encode(),
	}, 5*time.Second)
	if !out.Completed || len(out.Adverts) != 1 {
		t.Fatalf("DHT URI query = %+v", out)
	}
	out = cli.Query(node.QuerySpec{
		Kind:    describe.KindURI,
		Payload: (&describe.URIQuery{TypeURI: "urn:type:other"}).Encode(),
	}, 5*time.Second)
	if out.Via == node.ViaRegistry && len(out.Adverts) != 0 {
		t.Fatal("DHT returned results for a non-existent type")
	}
}

func TestCentralResponseControl(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 28})
	central := w.AddCentral("lan0", "uddi")
	for i := 0; i < 8; i++ {
		w.AddService("lan0", fmt.Sprintf("s%d", i), serviceCfg(central.PeerInfo()),
			w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), sim.C("RadarFeed")))
	}
	cli := w.AddClient("lan0", "c1", clientCfg(central.PeerInfo()))
	w.Run(2 * time.Second)
	spec := w.SemanticSpec(sim.C("SensorFeed"), 0)
	spec.BestOnly = true
	out := cli.Query(spec, 5*time.Second)
	if len(out.Adverts) != 1 {
		t.Fatalf("central BestOnly = %d", len(out.Adverts))
	}
	spec = w.SemanticSpec(sim.C("SensorFeed"), 0)
	spec.MaxResults = 3
	out = cli.Query(spec, 5*time.Second)
	if len(out.Adverts) != 3 {
		t.Fatalf("central MaxResults=3 = %d", len(out.Adverts))
	}
}

func TestCentralRejectsBadPublishes(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 29})
	central := w.AddCentral("lan0", "uddi")
	tcEnv := w.AddClient("lan0", "c1", clientCfg(central.PeerInfo()))
	w.Run(time.Second)
	// Unsupported kind.
	tcEnv.Env.Send(central.Addr, wire.Publish{Advert: wire.Advertisement{
		ID: w.Gen.New(), Kind: 42, Payload: []byte{1},
	}})
	// Corrupt payload.
	tcEnv.Env.Send(central.Addr, wire.Publish{Advert: wire.Advertisement{
		ID: w.Gen.New(), Kind: 3, Payload: []byte{0xFF},
	}})
	w.Run(time.Second)
	if central.Central.Len() != 0 {
		t.Fatal("central accepted invalid publishes")
	}
	if central.Central.Stats.Publishes != 2 {
		t.Fatalf("publish stat = %d", central.Central.Stats.Publishes)
	}
}

func TestCentralAdopt(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 30})
	fed := w.AddRegistry("lan0", "r0", federationConfigForTest())
	tc := w.AddClient("lan0", "c1", clientCfg(fed.PeerInfo()))
	w.AddService("lan0", "s0", serviceCfg(fed.PeerInfo()), w.SemanticProfile("urn:svc:a", sim.C("RadarFeed")))
	w.Run(2 * time.Second)
	central := w.AddCentral("lan1", "uddi")
	central.Central.Adopt(fed.Reg.Store())
	if central.Central.Len() != 1 {
		t.Fatalf("Adopt moved %d adverts", central.Central.Len())
	}
	_ = tc
}

func TestDHTAttributeOnlyKVQueryUnroutable(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 31})
	ring := w.AddDHTRing([]string{"lan0", "lan1"})
	kv := &describe.KVDescription{ServiceURI: "urn:svc:k", TypeURI: "urn:type:x", Attrs: map[string]string{"a": "b"}, Addr: "e"}
	w.AddService("lan0", "s1", serviceCfg(ring[0].PeerInfo()), kv)
	cli := w.AddClient("lan1", "c1", clientCfg(ring[1].PeerInfo()))
	w.Run(2 * time.Second)
	// Attribute-only query has no token → DHT cannot route → empty.
	out := cli.Query(node.QuerySpec{
		Kind:    describe.KindKV,
		Payload: (&describe.KVQuery{Attrs: map[string]string{"a": "b"}}).Encode(),
	}, 5*time.Second)
	if out.Via == node.ViaRegistry && len(out.Adverts) != 0 {
		t.Fatal("DHT answered an unroutable query")
	}
	// Typed KV query routes and matches.
	out = cli.Query(node.QuerySpec{
		Kind:    describe.KindKV,
		Payload: (&describe.KVQuery{TypeURI: "urn:type:x"}).Encode(),
	}, 5*time.Second)
	if !out.Completed || len(out.Adverts) != 1 {
		t.Fatalf("typed KV DHT query = %+v", out)
	}
}

func TestDHTRenewAcked(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 32})
	ring := w.AddDHTRing([]string{"lan0"})
	svc := w.AddService("lan0", "s1", serviceCfg(ring[0].PeerInfo()), w.SemanticProfile("urn:svc:r", sim.C("RadarFeed")))
	w.Run(5 * time.Second) // several renew cycles
	if _, ok := svc.Svc.Bootstrapper().Current(); !ok {
		t.Fatal("service lost its DHT registry despite renew acks")
	}
	total := 0
	for _, h := range ring {
		total += h.Node.Len()
	}
	if total != 1 {
		t.Fatalf("DHT holds %d adverts", total)
	}
}

func federationConfigForTest() federation.Config { return federation.Config{} }
