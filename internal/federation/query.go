package federation

import (
	"time"

	"semdisco/internal/registry"
	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// pendingQuery tracks one in-flight federated query at this hop:
// results from forwarded copies aggregate here until every child
// answered or the hop deadline fires, then the merged, re-ranked,
// response-controlled result goes back toward the origin (§3.1: the
// registry, not the client, controls the number of responses).
type pendingQuery struct {
	query   wire.Query
	replyTo transport.Addr
	// parent is the node the query arrived from (client or forwarding
	// registry); a duplicated datagram of the same forward is recognized
	// by matching it and dropped rather than answered "exhausted".
	parent wire.NodeID
	// pools holds locally evaluated results; remote holds pools that
	// arrived from forwarded copies (or were pre-seeded from the
	// gateway result cache). They are kept apart so only genuinely
	// remote results are cached for reuse.
	pools       [][]wire.Advertisement
	remote      [][]wire.Advertisement
	outstanding map[wire.NodeID]bool
	// localPending marks a local evaluation still running on the read
	// pool; aggregation must not finalize before it lands (or the hop
	// deadline fires, whichever is first).
	localPending bool
	// fill marks this query as a candidate to fill the gateway result
	// cache under fillKey once every forwarded child has answered.
	fill    bool
	fillKey rkey
	cancel  transport.CancelFunc
	done    bool
}

// allPools returns local and remote pools together for merge-ranking.
func (p *pendingQuery) allPools() [][]wire.Advertisement {
	if len(p.remote) == 0 {
		return p.pools
	}
	out := make([][]wire.Advertisement, 0, len(p.pools)+len(p.remote))
	out = append(out, p.pools...)
	return append(out, p.remote...)
}

func (r *Registry) handleQuery(env *wire.Envelope, from transport.Addr, qp *wire.Query) {
	// The query outlives this handler (pending state, pooled evaluation
	// off the node goroutine, forwards), but the decoded payload is
	// borrowed from the receive buffer — copy once here.
	q := *qp
	q.Payload = wire.CloneBytes(q.Payload)
	r.stats.QueriesReceived++
	fQueriesReceived.Inc()
	// Loop avoidance by unique query ID (§4.10).
	if _, dup := r.seen[q.QueryID]; dup {
		r.stats.DuplicatesSuppressed++
		fQueriesDuplicate.Inc()
		// A duplicated datagram of the forward we are already processing
		// (same parent, query still pending) is dropped: that parent gets
		// the real answer when aggregation completes. Otherwise tell a
		// forwarding registry this branch is exhausted so its aggregation
		// completes without waiting for the hop deadline — but only a
		// registry: an empty Complete to the origin client would finalize
		// its query before the real fan-out answers.
		if p, pending := r.pending[q.QueryID]; pending && p.parent == env.From {
			return
		}
		if _, isPeer := r.peers[env.From]; isPeer {
			r.env.Send(from, wire.QueryResult{QueryID: q.QueryID, Complete: true})
		}
		return
	}
	r.seen[q.QueryID] = r.now()

	opts := registry.QueryOptions{MaxResults: int(q.MaxResults), BestOnly: q.BestOnly, NoCache: q.NoCache}

	// Gateway result cache: a fresh cached remote pool substitutes for
	// the whole fan-out — only the local evaluation runs. NoCache
	// queries skip the lookup but still fill the cache (their result is
	// fresh by construction).
	var key rkey
	var cachedRemote [][]wire.Advertisement
	cacheHit := false
	if r.rcache != nil {
		key = rkeyFor(q)
		if !q.NoCache {
			cachedRemote, cacheHit = r.rcache.get(key, q.Payload, r.now())
		}
	}

	var targets []fwdTarget
	if !cacheHit {
		targets = r.resolveTargets(q, env.From)
	}
	p := &pendingQuery{
		query:       q,
		replyTo:     transport.Addr(q.ReplyAddr),
		parent:      env.From,
		remote:      cachedRemote,
		outstanding: make(map[wire.NodeID]bool, len(targets)),
	}
	if r.rcache != nil && !cacheHit && len(targets) > 0 {
		p.fill, p.fillKey = true, key
	}

	// Local evaluation. A registry without the payload's model still
	// forwards the query (it may be evaluable elsewhere). With a read
	// pool the store lookup runs off the node goroutine — the store is
	// concurrency-safe — and its result re-enters through the timer
	// queue, so all bookkeeping below stays single-writer. A query
	// pinned to a namespace this node provably does not front (it
	// declares a different domain) skips local evaluation: the store
	// holds the wrong domain's services, and a relay hop — the root
	// fallback in particular — must not leak them into the answer.
	if q.Domain != "" && r.dirEnabled() && q.Domain != r.cfg.Domain {
		if len(targets) == 0 {
			r.respond(q, p.replyTo, p.allPools())
			return
		}
		r.pending[q.QueryID] = p
		r.forward(p, q, targets)
		return
	}
	now := r.now()
	if r.pool != nil && r.pool.TrySubmit(func() {
		local, err := r.store.Evaluate(q.Kind, q.Payload, opts, now)
		r.env.Clock.After(0, func() { r.localDone(q.QueryID, local, err) })
	}) {
		p.localPending = true
		fReadPoolAsync.Inc()
	} else {
		fReadPoolInline.Inc()
		if local, err := r.store.Evaluate(q.Kind, q.Payload, opts, now); err == nil {
			p.pools = append(p.pools, local)
		} else {
			r.env.Tracef("local evaluation skipped: %v", err)
		}
	}

	if len(targets) == 0 && !p.localPending {
		// Leaf of the forwarding tree (or a cache hit): answer
		// immediately.
		r.respond(q, p.replyTo, p.allPools())
		return
	}
	r.pending[q.QueryID] = p
	r.forward(p, q, targets)
}

// forward sends the query on to its resolved targets and arms the hop
// deadline: children get proportionally smaller budgets, so a parent
// never times out before its children can respond. It also bounds how
// long a leaf waits for its own pooled evaluation.
func (r *Registry) forward(p *pendingQuery, q wire.Query, targets []fwdTarget) {
	fwd := q
	fwd.TTL = q.TTL - 1
	fwd.ReplyAddr = string(r.env.Addr())
	for _, t := range targets {
		p.outstanding[t.id] = true
		r.env.Send(t.addr, fwd)
		r.stats.QueriesForwarded++
		fQueriesForwarded.Inc()
	}
	deadline := r.cfg.QueryTimeout * time.Duration(int(q.TTL)+1)
	p.cancel = r.env.Clock.After(deadline, func() { r.finalize(q.QueryID) })
}

// localDone lands a pooled local evaluation back on the node goroutine
// and finalizes the query if nothing else is outstanding.
func (r *Registry) localDone(queryID uuid.UUID, local []wire.Advertisement, err error) {
	if r.stopped {
		return
	}
	p, ok := r.pending[queryID]
	if !ok || p.done {
		return // already answered on the hop deadline
	}
	p.localPending = false
	if err == nil {
		p.pools = append(p.pools, local)
	} else {
		r.env.Tracef("local evaluation skipped: %v", err)
	}
	if len(p.outstanding) == 0 {
		r.finalize(queryID)
	}
}

// fwdTarget is one destination of a query forward: usually a peer, but
// the cascade may target a gateway known only through the directory.
type fwdTarget struct {
	id   wire.NodeID
	addr transport.Addr
}

// resolveTargets implements the resolution cascade for domain-scoped
// queries — local store (handled by the caller's evaluation), then the
// domain directory, then the root fallback — and defers to the flat
// forwardTargets for everything else. A query pinned to a *different*
// domain skips the WAN flood entirely: the directory names the one
// gateway fronting that namespace, and an unknown domain escalates to
// the configured root.
func (r *Registry) resolveTargets(q wire.Query, sender wire.NodeID) []fwdTarget {
	if q.TTL == 0 {
		return nil
	}
	if q.Domain != "" && r.dirEnabled() && q.Domain != r.cfg.Domain && r.IsGateway() {
		if e, ok := r.dir.lookup(q.Domain); ok {
			fDirLookupHit.Inc()
			if e.Origin == r.env.ID || e.Origin == sender {
				return nil
			}
			return []fwdTarget{{id: e.Origin, addr: transport.Addr(e.Addr)}}
		}
		fDirLookupMiss.Inc()
		if r.cfg.RootAddr != "" && r.cfg.Role != RoleRoot {
			fDirRootFallback.Inc()
			return []fwdTarget{{id: r.peerIDByAddr(r.cfg.RootAddr), addr: transport.Addr(r.cfg.RootAddr)}}
		}
		// Nowhere left to escalate (we are the root, or no root is
		// configured): fall through to the flat fan-out so the query can
		// still resolve the slow way.
	}
	peers := r.forwardTargets(q, sender)
	out := make([]fwdTarget, len(peers))
	for i, p := range peers {
		out[i] = fwdTarget{id: p.info.ID, addr: transport.Addr(p.info.Addr)}
	}
	return out
}

// peerIDByAddr finds the peer ID behind a transport address (the root,
// when it is also seeded); a nil ID means the responder is unknown and
// aggregation completes on the hop deadline instead of its Complete.
func (r *Registry) peerIDByAddr(addr string) wire.NodeID {
	for _, p := range r.sortedPeers() {
		if p.info.Addr == addr {
			return p.info.ID
		}
	}
	return wire.NodeID{}
}

// forwardTargets selects the peers this hop forwards to, applying TTL,
// the forwarding strategy, gateway coordination, summary pruning, and —
// for a query pinned to this gateway's own domain — domain confinement.
func (r *Registry) forwardTargets(q wire.Query, sender wire.NodeID) []*peer {
	if q.TTL == 0 {
		return nil
	}
	gateway := r.IsGateway()
	confine := q.Domain != "" && r.dirEnabled() && q.Domain == r.cfg.Domain
	var eligible []*peer
	for _, p := range r.sortedPeers() {
		if p.info.ID == sender {
			continue
		}
		if !p.lan && !gateway {
			// Non-gateway registries leave WAN forwarding to the LAN
			// gateway (§4.7); the gateway is a LAN peer and will relay.
			continue
		}
		if confine && !p.lan {
			// The query is pinned to our own domain: WAN peers that the
			// directory proves front a different namespace cannot hold
			// in-domain services. Peers the directory does not know stay
			// eligible (conservative, like summary pruning).
			if d, known := r.dir.domainOf(p.info.ID); known && d != q.Domain {
				continue
			}
		}
		if r.cfg.SummaryPruning && r.pruneBySummary(q, p) {
			r.stats.ForwardsPruned++
			fForwardsPruned.Inc()
			continue
		}
		eligible = append(eligible, p)
	}
	switch q.Strategy {
	case wire.StrategyRandomWalk:
		k := int(q.Walkers)
		if k == 0 {
			k = 1
		}
		if len(eligible) > k {
			r.rng.Shuffle(len(eligible), func(i, j int) {
				eligible[i], eligible[j] = eligible[j], eligible[i]
			})
			eligible = eligible[:k]
		}
	default:
		// Flood and expanding ring forward to all eligible peers; the
		// ring's growth is driven by the client reissuing with larger
		// TTLs.
	}
	return eligible
}

// pruneBySummary reports whether the peer's gossiped summary proves it
// cannot answer the query. Conservative: peers without a summary, or
// queries without prunable tokens, are never pruned.
func (r *Registry) pruneBySummary(q wire.Query, p *peer) bool {
	if p.summary == nil {
		return false
	}
	// The cached query plan means a query forwarded to many peers — and
	// later evaluated and merge-ranked here — decodes its payload once
	// per node, not once per peer considered.
	_, tokens, prunable, err := r.store.QueryPlan(q.Kind, q.Payload)
	if err != nil || !prunable {
		return false
	}
	have := p.summary[q.Kind]
	if have == nil {
		// The peer gossiped a summary that contains nothing of this
		// kind: it provably stores no matching advertisement. It might
		// still relay to others, but summary pruning deliberately trades
		// that reach for bandwidth — the ablation E12 measures the cost.
		return true
	}
	for _, t := range tokens {
		if have[t] {
			return false
		}
	}
	return true
}

func (r *Registry) handleQueryResult(env *wire.Envelope, res *wire.QueryResult) {
	p, ok := r.pending[res.QueryID]
	if !ok || p.done {
		return
	}
	if len(res.Adverts) > 0 {
		// Aggregated pools outlive the handler (and may be pinned by the
		// gateway result cache); the decoded adverts borrow the receive
		// buffer, so deep-copy before retaining.
		p.remote = append(p.remote, wire.CloneAdverts(res.Adverts))
	}
	if res.Complete {
		if _, waiting := p.outstanding[env.From]; waiting {
			delete(p.outstanding, env.From)
		} else if len(p.outstanding) == 1 && p.outstanding[wire.NodeID{}] {
			// A root-fallback forward whose responder ID we did not know
			// was tracked under the nil ID; its Complete closes that slot.
			delete(p.outstanding, wire.NodeID{})
		}
		if len(p.outstanding) == 0 && !p.localPending {
			r.finalize(res.QueryID)
		}
	}
}

// finalize merges all pools, re-ranks and caps them, responds toward
// the origin, and releases the pending state.
func (r *Registry) finalize(queryID uuid.UUID) {
	p, ok := r.pending[queryID]
	if !ok || p.done {
		return
	}
	p.done = true
	delete(r.pending, queryID)
	if p.cancel != nil {
		p.cancel()
	}
	// Fill the gateway result cache only from a complete aggregation:
	// every forwarded child answered. A hop-deadline finalize with
	// branches still outstanding would pin a truncated result set.
	if p.fill && len(p.outstanding) == 0 && r.rcache != nil {
		r.rcache.put(p.fillKey, p.query.Payload, p.remote, r.now())
	}
	r.respond(p.query, p.replyTo, p.allPools())
}

func (r *Registry) respond(q wire.Query, to transport.Addr, pools [][]wire.Advertisement) {
	opts := registry.QueryOptions{MaxResults: int(q.MaxResults), BestOnly: q.BestOnly}
	merged, err := r.store.MergeRank(q.Kind, q.Payload, pools, opts)
	if err != nil {
		// No model for this kind here: pass pooled results through
		// unranked but still capped, so constrained registries can relay.
		for _, pool := range pools {
			merged = append(merged, pool...)
		}
		limit := int(q.MaxResults)
		if limit <= 0 {
			limit = r.store.DefaultMaxResults
		}
		if q.BestOnly {
			limit = 1
		}
		if len(merged) > limit {
			merged = merged[:limit]
		}
	}
	r.stats.QueriesAnswered++
	fQueriesAnswered.Inc()
	r.stats.ResultsReturned += uint64(len(merged))
	fResultsReturned.Add(uint64(len(merged)))
	r.env.Send(to, wire.QueryResult{QueryID: q.QueryID, Adverts: merged, Complete: true})
}
